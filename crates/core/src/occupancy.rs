//! Hierarchical port-occupancy bitsets for the sparse stepping hot path.
//!
//! Every switch in this workspace advances by one time slot by visiting its
//! ports; with plain `0..n` loops that is O(N) work per slot even when the
//! switch is almost empty — and the evaluation's most-simulated regimes (low
//! load, drain tails, sparse traces) are exactly the almost-empty ones.  An
//! [`OccupancySet`] tracks which ports currently hold work so the per-slot
//! loops can walk only the set bits: one `u64` word covers 64 ports, and the
//! step loops copy each word and pop set bits with `trailing_zeros`, so a
//! step costs O(occupied ports) plus an O(N/64) word scan.  The whole-switch
//! empty-batch elision from the batched stepping work is the degenerate
//! case: [`OccupancySet::is_empty`] is a single counter read.
//!
//! A summary level (one bit per level-0 word) is maintained alongside and
//! backs the scalar word-scan fallback; the hot walks themselves go through
//! [`OccupancySet::next_occupied_word`], a chunked scan that OR-reduces
//! [`SCAN_CHUNK`] level-0 words at a time (a shape LLVM autovectorizes into
//! one wide load + compare per chunk), and the fused
//! [`OccupancySet::next_occupied_matching`] query intersects occupancy with a
//! caller-supplied [`PortMask`] in the same chunked shape — the primitive the
//! sharded parallel step uses to confine each worker to its port range
//! without a per-port branch.
//!
//! The sets are plain indexes, deliberately decoupled from the containers
//! they summarize: a switch inserts a port when it enqueues into it and
//! removes it when a dequeue leaves the port empty.  Both the word walk and
//! the cursor visit ports in ascending order — the same order the dense
//! loops used, which the byte-identical golden nets rely on — and a pass may
//! freely clear the bits of ports it has already visited (the walk reads a
//! copied word).

use serde::{Deserialize, Serialize};

/// Level-0 words scanned per chunk by the vectorized walks: four `u64`s, one
/// 256-bit lane on AVX2/NEON-class hardware.  The OR-reduction over a fixed
/// `[u64; SCAN_CHUNK]` window is the portable-SIMD idiom — no intrinsics, but
/// a shape the autovectorizer reliably turns into wide loads.
pub const SCAN_CHUNK: usize = 4;

/// A two-level bitset over port indexes `0..n`.
///
/// Level 0 stores one bit per port in `u64` words; level 1 (`summary`)
/// stores one bit per level-0 word, set iff that word is non-zero.  For the
/// common `n ≤ 64` every operation touches a single word; the summary only
/// starts paying for itself past the 64-port word boundary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OccupancySet {
    n: usize,
    /// One bit per port.
    words: Vec<u64>,
    /// One bit per `words` entry (set iff the word is non-zero).
    summary: Vec<u64>,
    /// Number of set bits, kept for O(1) emptiness/len checks.
    len: usize,
}

impl OccupancySet {
    /// Create an empty set over ports `0..n`.
    pub fn new(n: usize) -> Self {
        let words = n.div_ceil(64);
        OccupancySet {
            n,
            words: vec![0; words.max(1)],
            summary: vec![0; words.max(1).div_ceil(64)],
            len: 0,
        }
    }

    /// The port-index domain this set covers.
    pub fn domain(&self) -> usize {
        self.n
    }

    /// Number of occupied ports.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no port is occupied — the whole-switch elision check.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mark a port occupied.  Returns true if it was previously empty.
    // lint: hot-path
    #[inline]
    pub fn insert(&mut self, port: usize) -> bool {
        debug_assert!(port < self.n, "port {port} out of domain {}", self.n);
        let w = port >> 6;
        let bit = 1u64 << (port & 63);
        let word = &mut self.words[w];
        if *word & bit != 0 {
            return false;
        }
        *word |= bit;
        self.summary[w >> 6] |= 1u64 << (w & 63);
        self.len += 1;
        true
    }

    /// Mark a port empty.  Returns true if it was previously occupied.
    // lint: hot-path
    #[inline]
    pub fn remove(&mut self, port: usize) -> bool {
        debug_assert!(port < self.n, "port {port} out of domain {}", self.n);
        let w = port >> 6;
        let bit = 1u64 << (port & 63);
        let word = &mut self.words[w];
        if *word & bit == 0 {
            return false;
        }
        *word &= !bit;
        if *word == 0 {
            self.summary[w >> 6] &= !(1u64 << (w & 63));
        }
        self.len -= 1;
        true
    }

    /// True if the port is marked occupied.
    // lint: hot-path
    #[inline]
    pub fn contains(&self, port: usize) -> bool {
        debug_assert!(port < self.n);
        self.words[port >> 6] & (1u64 << (port & 63)) != 0
    }

    /// Number of level-0 words (for the word-snapshot hot loops).
    #[inline]
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// The `w`-th level-0 word.  The fabric passes iterate a *copy* of each
    /// word with a `trailing_zeros` walk — about three instructions per
    /// occupied port — which is safe because a pass only ever clears bits of
    /// ports it has already visited (the copy is unaffected), and any insert
    /// it performs targets a different set.
    // lint: hot-path
    #[inline]
    pub fn word(&self, w: usize) -> u64 {
        self.words[w]
    }

    /// The smallest index `>= from_word` of a non-zero level-0 word, or
    /// `None`.  This is the step loops' word cursor: instead of visiting all
    /// `word_count()` words (most of them zero in sparse regimes), a pass
    /// asks for the next occupied word, pops its bits, and resumes from the
    /// word after it.
    ///
    /// Chunked scan: after a scalar prologue to a [`SCAN_CHUNK`] boundary,
    /// whole chunks are rejected with one OR-reduction each — a single wide
    /// load + compare once autovectorized — and only an occupied chunk is
    /// re-scanned word by word.  Tiny domains (`word_count() <= SCAN_CHUNK`)
    /// take the summary-driven scalar path, which touches fewer cache lines.
    // lint: hot-path
    #[inline]
    pub fn next_occupied_word(&self, from_word: usize) -> Option<usize> {
        let count = self.words.len();
        if self.len == 0 || from_word >= count {
            return None;
        }
        if count <= SCAN_CHUNK {
            return self.next_occupied_word_scalar(from_word);
        }
        let mut w = from_word;
        while w < count && !w.is_multiple_of(SCAN_CHUNK) {
            if self.words[w] != 0 {
                return Some(w);
            }
            w += 1;
        }
        while w + SCAN_CHUNK <= count {
            let c = &self.words[w..w + SCAN_CHUNK];
            if (c[0] | c[1]) | (c[2] | c[3]) != 0 {
                for (k, &word) in c.iter().enumerate() {
                    if word != 0 {
                        return Some(w + k);
                    }
                }
            }
            w += SCAN_CHUNK;
        }
        while w < count {
            if self.words[w] != 0 {
                return Some(w);
            }
            w += 1;
        }
        None
    }

    /// Scalar reference for [`Self::next_occupied_word`]: walk the summary
    /// level for the next non-zero word.  Kept public so the SIMD-vs-scalar
    /// parity nets can pin both paths against each other, and used directly
    /// for tiny domains where chunking cannot pay for itself.
    // lint: hot-path
    #[inline]
    pub fn next_occupied_word_scalar(&self, from_word: usize) -> Option<usize> {
        if self.len == 0 || from_word >= self.words.len() {
            return None;
        }
        let mut sw = from_word >> 6;
        let mut mask = !0u64 << (from_word & 63);
        while sw < self.summary.len() {
            let s = self.summary[sw] & mask;
            if s != 0 {
                let w = (sw << 6) + s.trailing_zeros() as usize;
                debug_assert_ne!(self.words[w], 0, "summary bit set for an empty word");
                return Some(w);
            }
            mask = !0u64;
            sw += 1;
        }
        None
    }

    /// The smallest occupied port `>= from`, or `None`.
    ///
    /// This is the hot-loop cursor: `while let Some(p) = set.next_at_or_after(i)`
    /// with `i = p + 1` visits occupied ports in ascending order, and because
    /// the set is re-read on every step the loop body may clear (or set) any
    /// bit at or before `p` without invalidating the walk.
    // lint: hot-path
    #[inline]
    pub fn next_at_or_after(&self, from: usize) -> Option<usize> {
        if self.len == 0 || from >= self.n {
            return None;
        }
        // The word containing `from`, masked to bits at or above it.
        let w0 = from >> 6;
        let word = self.words[w0] & (!0u64 << (from & 63));
        if word != 0 {
            return Some((w0 << 6) + word.trailing_zeros() as usize);
        }
        let w = self.next_occupied_word_scalar(w0 + 1)?;
        let word = self.words[w];
        debug_assert_ne!(word, 0, "summary bit set for an empty word");
        Some((w << 6) + word.trailing_zeros() as usize)
    }

    /// The smallest port `>= from` that is occupied *and* set in `mask`, or
    /// `None`.  The fused query the sharded step uses: a worker confined to a
    /// contiguous port range intersects occupancy with its range mask chunk
    /// by chunk instead of filtering ports one at a time, so an all-idle
    /// foreign range is rejected [`SCAN_CHUNK`] words per compare.
    ///
    /// `mask` must cover the same domain; the walk visits matching ports in
    /// ascending order under the same mid-walk mutation contract as
    /// [`Self::next_at_or_after`].
    // lint: hot-path
    #[inline]
    pub fn next_occupied_matching(&self, from: usize, mask: &PortMask) -> Option<usize> {
        debug_assert_eq!(mask.n, self.n, "mask domain mismatch");
        let count = self.words.len();
        if self.len == 0 || from >= self.n {
            return None;
        }
        // The word containing `from`, masked to bits at or above it.
        let w0 = from >> 6;
        let first = self.words[w0] & mask.words[w0] & (!0u64 << (from & 63));
        if first != 0 {
            return Some((w0 << 6) + first.trailing_zeros() as usize);
        }
        let mut w = w0 + 1;
        while w < count && !w.is_multiple_of(SCAN_CHUNK) {
            let word = self.words[w] & mask.words[w];
            if word != 0 {
                return Some((w << 6) + word.trailing_zeros() as usize);
            }
            w += 1;
        }
        while w + SCAN_CHUNK <= count {
            let a = &self.words[w..w + SCAN_CHUNK];
            let b = &mask.words[w..w + SCAN_CHUNK];
            let m = [a[0] & b[0], a[1] & b[1], a[2] & b[2], a[3] & b[3]];
            if (m[0] | m[1]) | (m[2] | m[3]) != 0 {
                for (k, &word) in m.iter().enumerate() {
                    if word != 0 {
                        return Some(((w + k) << 6) + word.trailing_zeros() as usize);
                    }
                }
            }
            w += SCAN_CHUNK;
        }
        while w < count {
            let word = self.words[w] & mask.words[w];
            if word != 0 {
                return Some((w << 6) + word.trailing_zeros() as usize);
            }
            w += 1;
        }
        None
    }

    /// Scalar reference for [`Self::next_occupied_matching`] — a plain
    /// port-at-a-time probe, kept public for the parity nets.
    pub fn next_occupied_matching_scalar(&self, from: usize, mask: &PortMask) -> Option<usize> {
        debug_assert_eq!(mask.n, self.n, "mask domain mismatch");
        (from..self.n).find(|&p| self.contains(p) && mask.contains(p))
    }

    /// Iterate occupied ports in ascending order (tests, cold paths).
    pub fn iter(&self) -> Iter<'_> {
        Iter { set: self, from: 0 }
    }
}

/// A flat bitmask over ports `0..n` — the second operand of the fused
/// [`OccupancySet::next_occupied_matching`] query.
///
/// Unlike [`OccupancySet`] it carries no summary level or length counter:
/// masks are built once (e.g. one contiguous range per parallel shard) and
/// then only read, so the maintenance cost would buy nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortMask {
    n: usize,
    /// One bit per port, same word layout as `OccupancySet::words`.
    words: Vec<u64>,
}

impl PortMask {
    /// Create an all-empty mask over ports `0..n`.
    pub fn new(n: usize) -> Self {
        PortMask {
            n,
            words: vec![0; n.div_ceil(64).max(1)],
        }
    }

    /// Create a mask with every port in `0..n` set.
    pub fn all(n: usize) -> Self {
        let mut mask = PortMask::new(n);
        mask.set_range(0, n);
        mask
    }

    /// The port-index domain this mask covers.
    pub fn domain(&self) -> usize {
        self.n
    }

    /// Clear every port.
    pub fn clear(&mut self) {
        for word in &mut self.words {
            *word = 0;
        }
    }

    /// Set one port.
    pub fn set(&mut self, port: usize) {
        debug_assert!(port < self.n, "port {port} out of domain {}", self.n);
        self.words[port >> 6] |= 1u64 << (port & 63);
    }

    /// Set every port in `[lo, hi)`.  `hi` is clamped to the domain and
    /// `lo >= hi` sets nothing, so callers can pass raw shard bounds.
    pub fn set_range(&mut self, lo: usize, hi: usize) {
        let hi = hi.min(self.n);
        if lo >= hi {
            return;
        }
        let (wl, wh) = (lo >> 6, (hi - 1) >> 6);
        let lo_mask = !0u64 << (lo & 63);
        let hi_mask = !0u64 >> (63 - ((hi - 1) & 63));
        if wl == wh {
            self.words[wl] |= lo_mask & hi_mask;
        } else {
            self.words[wl] |= lo_mask;
            for w in &mut self.words[wl + 1..wh] {
                *w = !0u64;
            }
            self.words[wh] |= hi_mask;
        }
    }

    /// True if the port is set.
    // lint: hot-path
    #[inline]
    pub fn contains(&self, port: usize) -> bool {
        debug_assert!(port < self.n);
        self.words[port >> 6] & (1u64 << (port & 63)) != 0
    }
}

/// Ascending iterator over the occupied ports of an [`OccupancySet`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    set: &'a OccupancySet,
    from: usize,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        let p = self.set.next_at_or_after(self.from)?;
        self.from = p + 1;
        Some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_remove_contains_round_trip() {
        let mut s = OccupancySet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129), "double insert reports already-present");
        assert!(s.contains(0) && s.contains(129) && !s.contains(64));
        assert_eq!(s.len(), 2);
        assert!(s.remove(0));
        assert!(!s.remove(0), "double remove reports already-absent");
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        assert!(s.remove(129));
        assert!(s.is_empty());
    }

    #[test]
    fn cursor_walks_in_ascending_order_across_word_boundaries() {
        let mut s = OccupancySet::new(200);
        for p in [0usize, 1, 63, 64, 65, 127, 128, 199] {
            s.insert(p);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![0, 1, 63, 64, 65, 127, 128, 199]);
        assert_eq!(s.next_at_or_after(2), Some(63));
        assert_eq!(s.next_at_or_after(63), Some(63));
        assert_eq!(s.next_at_or_after(66), Some(127));
        assert_eq!(s.next_at_or_after(129), Some(199));
        assert_eq!(s.next_at_or_after(200), None);
    }

    #[test]
    fn clearing_visited_bits_mid_walk_is_safe() {
        let mut s = OccupancySet::new(96);
        for p in [3usize, 40, 70, 95] {
            s.insert(p);
        }
        let mut visited = Vec::new();
        let mut from = 0usize;
        while let Some(p) = s.next_at_or_after(from) {
            visited.push(p);
            s.remove(p);
            from = p + 1;
        }
        assert_eq!(visited, vec![3, 40, 70, 95]);
        assert!(s.is_empty());
    }

    #[test]
    fn tiny_domains_work() {
        let mut s = OccupancySet::new(2);
        assert_eq!(s.next_at_or_after(0), None);
        s.insert(1);
        assert_eq!(s.next_at_or_after(0), Some(1));
        assert_eq!(s.next_at_or_after(2), None);
    }

    #[test]
    fn port_mask_ranges_cover_word_boundaries() {
        let mut m = PortMask::new(300);
        m.set_range(60, 70);
        m.set_range(128, 128); // empty range: no-op
        m.set_range(250, 1000); // hi clamps to the domain
        for p in 0..300 {
            let want = (60..70).contains(&p) || (250..300).contains(&p);
            assert_eq!(m.contains(p), want, "port {p}");
        }
        m.clear();
        assert!((0..300).all(|p| !m.contains(p)));
        let all = PortMask::all(300);
        assert!((0..300).all(|p| all.contains(p)));
        assert_eq!(all.domain(), 300);
    }

    #[test]
    fn fused_query_intersects_occupancy_with_the_mask() {
        let mut s = OccupancySet::new(512);
        for p in [0usize, 63, 64, 200, 255, 256, 300, 511] {
            s.insert(p);
        }
        let mut m = PortMask::new(512);
        m.set_range(64, 256);
        assert_eq!(s.next_occupied_matching(0, &m), Some(64));
        assert_eq!(s.next_occupied_matching(65, &m), Some(200));
        assert_eq!(s.next_occupied_matching(201, &m), Some(255));
        assert_eq!(s.next_occupied_matching(256, &m), None);
        let empty = PortMask::new(512);
        assert_eq!(s.next_occupied_matching(0, &empty), None);
        let all = PortMask::all(512);
        assert_eq!(s.next_occupied_matching(257, &all), Some(300));
    }

    proptest! {
        /// The chunked scans agree with their scalar references and with a
        /// brute-force model, for domains that are not multiples of 64 and
        /// masks whose ranges start/end exactly on word boundaries.
        #[test]
        fn chunked_scans_match_scalar_references(
            n in 1usize..600,
            ports in proptest::collection::vec(0usize..600, 0..120),
            ranges in proptest::collection::vec((0usize..10, 0usize..10), 0..4),
        ) {
            let mut set = OccupancySet::new(n);
            let mut model = vec![false; n];
            for raw in ports {
                let p = raw % n;
                set.insert(p);
                model[p] = true;
            }
            // Build a mask from word-granular ranges so boundaries land
            // exactly on multiples of 64 (plus the clamped domain edge).
            let mut mask = PortMask::new(n);
            let mut mask_model = vec![false; n];
            for (a, b) in ranges {
                let (lo, hi) = (a * 64, b * 64 + 64);
                mask.set_range(lo, hi);
                for covered in mask_model.iter_mut().take(hi.min(n)).skip(lo) {
                    *covered = true;
                }
            }
            for w in 0..=set.word_count() {
                let brute = (w..set.word_count()).find(|&i| set.word(i) != 0);
                prop_assert_eq!(set.next_occupied_word(w), brute);
                prop_assert_eq!(set.next_occupied_word_scalar(w), brute);
            }
            for from in 0..=n {
                let brute = (from..n).find(|&p| model[p] && mask_model[p]);
                prop_assert_eq!(set.next_occupied_matching(from, &mask), brute);
                prop_assert_eq!(
                    set.next_occupied_matching_scalar(from, &mask),
                    brute
                );
            }
        }

        /// The two-level bitset agrees with a brute-force `Vec<bool>` model
        /// under arbitrary insert/remove interleavings, for domains that
        /// stay inside one word and ones that cross the 64-port boundary.
        #[test]
        fn matches_brute_force_model(
            n in 1usize..200,
            ops in proptest::collection::vec((0usize..2, 0usize..200), 0..300),
        ) {
            let mut set = OccupancySet::new(n);
            let mut model = vec![false; n];
            for (op, raw) in ops {
                let insert = op == 1;
                let port = raw % n;
                if insert {
                    prop_assert_eq!(set.insert(port), !model[port]);
                    model[port] = true;
                } else {
                    prop_assert_eq!(set.remove(port), model[port]);
                    model[port] = false;
                }
                prop_assert_eq!(set.len(), model.iter().filter(|&&b| b).count());
            }
            // Every port agrees, and the cursor enumerates exactly the model.
            for (p, &occupied) in model.iter().enumerate() {
                prop_assert_eq!(set.contains(p), occupied);
            }
            let walked: Vec<usize> = set.iter().collect();
            let expected: Vec<usize> =
                (0..n).filter(|&p| model[p]).collect();
            prop_assert_eq!(walked, expected);
            // And next_at_or_after agrees with the model from every origin.
            for from in 0..=n {
                let want = (from..n).find(|&p| model[p]);
                prop_assert_eq!(set.next_at_or_after(from), want);
            }
        }
    }
}
