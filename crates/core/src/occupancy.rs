//! Hierarchical port-occupancy bitsets for the sparse stepping hot path.
//!
//! Every switch in this workspace advances by one time slot by visiting its
//! ports; with plain `0..n` loops that is O(N) work per slot even when the
//! switch is almost empty — and the evaluation's most-simulated regimes (low
//! load, drain tails, sparse traces) are exactly the almost-empty ones.  An
//! [`OccupancySet`] tracks which ports currently hold work so the per-slot
//! loops can walk only the set bits: one `u64` word covers 64 ports, and the
//! step loops copy each word and pop set bits with `trailing_zeros`, so a
//! step costs O(occupied ports) plus an O(N/64) word scan.  The whole-switch
//! empty-batch elision from the batched stepping work is the degenerate
//! case: [`OccupancySet::is_empty`] is a single counter read.
//!
//! A summary level (one bit per level-0 word) is maintained alongside; today
//! it backs the cursor API ([`OccupancySet::next_at_or_after`] /
//! [`OccupancySet::iter`]) and the consistency nets, not the step loops —
//! skipping 64 empty ports at a time in the hot walks (and vectorizing the
//! scan) is the ROADMAP's "SIMD-batched bitset scans" open item.
//!
//! The sets are plain indexes, deliberately decoupled from the containers
//! they summarize: a switch inserts a port when it enqueues into it and
//! removes it when a dequeue leaves the port empty.  Both the word walk and
//! the cursor visit ports in ascending order — the same order the dense
//! loops used, which the byte-identical golden nets rely on — and a pass may
//! freely clear the bits of ports it has already visited (the walk reads a
//! copied word).

use serde::{Deserialize, Serialize};

/// A two-level bitset over port indexes `0..n`.
///
/// Level 0 stores one bit per port in `u64` words; level 1 (`summary`)
/// stores one bit per level-0 word, set iff that word is non-zero.  For the
/// common `n ≤ 64` every operation touches a single word; the summary only
/// starts paying for itself past the 64-port word boundary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OccupancySet {
    n: usize,
    /// One bit per port.
    words: Vec<u64>,
    /// One bit per `words` entry (set iff the word is non-zero).
    summary: Vec<u64>,
    /// Number of set bits, kept for O(1) emptiness/len checks.
    len: usize,
}

impl OccupancySet {
    /// Create an empty set over ports `0..n`.
    pub fn new(n: usize) -> Self {
        let words = n.div_ceil(64);
        OccupancySet {
            n,
            words: vec![0; words.max(1)],
            summary: vec![0; words.max(1).div_ceil(64)],
            len: 0,
        }
    }

    /// The port-index domain this set covers.
    pub fn domain(&self) -> usize {
        self.n
    }

    /// Number of occupied ports.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no port is occupied — the whole-switch elision check.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mark a port occupied.  Returns true if it was previously empty.
    // lint: hot-path
    #[inline]
    pub fn insert(&mut self, port: usize) -> bool {
        debug_assert!(port < self.n, "port {port} out of domain {}", self.n);
        let w = port >> 6;
        let bit = 1u64 << (port & 63);
        let word = &mut self.words[w];
        if *word & bit != 0 {
            return false;
        }
        *word |= bit;
        self.summary[w >> 6] |= 1u64 << (w & 63);
        self.len += 1;
        true
    }

    /// Mark a port empty.  Returns true if it was previously occupied.
    // lint: hot-path
    #[inline]
    pub fn remove(&mut self, port: usize) -> bool {
        debug_assert!(port < self.n, "port {port} out of domain {}", self.n);
        let w = port >> 6;
        let bit = 1u64 << (port & 63);
        let word = &mut self.words[w];
        if *word & bit == 0 {
            return false;
        }
        *word &= !bit;
        if *word == 0 {
            self.summary[w >> 6] &= !(1u64 << (w & 63));
        }
        self.len -= 1;
        true
    }

    /// True if the port is marked occupied.
    // lint: hot-path
    #[inline]
    pub fn contains(&self, port: usize) -> bool {
        debug_assert!(port < self.n);
        self.words[port >> 6] & (1u64 << (port & 63)) != 0
    }

    /// Number of level-0 words (for the word-snapshot hot loops).
    #[inline]
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// The `w`-th level-0 word.  The fabric passes iterate a *copy* of each
    /// word with a `trailing_zeros` walk — about three instructions per
    /// occupied port — which is safe because a pass only ever clears bits of
    /// ports it has already visited (the copy is unaffected), and any insert
    /// it performs targets a different set.
    // lint: hot-path
    #[inline]
    pub fn word(&self, w: usize) -> u64 {
        self.words[w]
    }

    /// The smallest occupied port `>= from`, or `None`.
    ///
    /// This is the hot-loop cursor: `while let Some(p) = set.next_at_or_after(i)`
    /// with `i = p + 1` visits occupied ports in ascending order, and because
    /// the set is re-read on every step the loop body may clear (or set) any
    /// bit at or before `p` without invalidating the walk.
    // lint: hot-path
    #[inline]
    pub fn next_at_or_after(&self, from: usize) -> Option<usize> {
        if self.len == 0 || from >= self.n {
            return None;
        }
        // The word containing `from`, masked to bits at or above it.
        let w0 = from >> 6;
        let word = self.words[w0] & (!0u64 << (from & 63));
        if word != 0 {
            return Some((w0 << 6) + word.trailing_zeros() as usize);
        }
        // Walk the summary for the next non-zero word after w0.
        let start = w0 + 1;
        let mut sw = start >> 6;
        let mut mask = if start & 63 == 0 {
            !0u64
        } else {
            !0u64 << (start & 63)
        };
        while sw < self.summary.len() {
            let s = self.summary[sw] & mask;
            if s != 0 {
                let w = (sw << 6) + s.trailing_zeros() as usize;
                let word = self.words[w];
                debug_assert_ne!(word, 0, "summary bit set for an empty word");
                return Some((w << 6) + word.trailing_zeros() as usize);
            }
            mask = !0u64;
            sw += 1;
        }
        None
    }

    /// Iterate occupied ports in ascending order (tests, cold paths).
    pub fn iter(&self) -> Iter<'_> {
        Iter { set: self, from: 0 }
    }
}

/// Ascending iterator over the occupied ports of an [`OccupancySet`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    set: &'a OccupancySet,
    from: usize,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        let p = self.set.next_at_or_after(self.from)?;
        self.from = p + 1;
        Some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_remove_contains_round_trip() {
        let mut s = OccupancySet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129), "double insert reports already-present");
        assert!(s.contains(0) && s.contains(129) && !s.contains(64));
        assert_eq!(s.len(), 2);
        assert!(s.remove(0));
        assert!(!s.remove(0), "double remove reports already-absent");
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        assert!(s.remove(129));
        assert!(s.is_empty());
    }

    #[test]
    fn cursor_walks_in_ascending_order_across_word_boundaries() {
        let mut s = OccupancySet::new(200);
        for p in [0usize, 1, 63, 64, 65, 127, 128, 199] {
            s.insert(p);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![0, 1, 63, 64, 65, 127, 128, 199]);
        assert_eq!(s.next_at_or_after(2), Some(63));
        assert_eq!(s.next_at_or_after(63), Some(63));
        assert_eq!(s.next_at_or_after(66), Some(127));
        assert_eq!(s.next_at_or_after(129), Some(199));
        assert_eq!(s.next_at_or_after(200), None);
    }

    #[test]
    fn clearing_visited_bits_mid_walk_is_safe() {
        let mut s = OccupancySet::new(96);
        for p in [3usize, 40, 70, 95] {
            s.insert(p);
        }
        let mut visited = Vec::new();
        let mut from = 0usize;
        while let Some(p) = s.next_at_or_after(from) {
            visited.push(p);
            s.remove(p);
            from = p + 1;
        }
        assert_eq!(visited, vec![3, 40, 70, 95]);
        assert!(s.is_empty());
    }

    #[test]
    fn tiny_domains_work() {
        let mut s = OccupancySet::new(2);
        assert_eq!(s.next_at_or_after(0), None);
        s.insert(1);
        assert_eq!(s.next_at_or_after(0), Some(1));
        assert_eq!(s.next_at_or_after(2), None);
    }

    proptest! {
        /// The two-level bitset agrees with a brute-force `Vec<bool>` model
        /// under arbitrary insert/remove interleavings, for domains that
        /// stay inside one word and ones that cross the 64-port boundary.
        #[test]
        fn matches_brute_force_model(
            n in 1usize..200,
            ops in proptest::collection::vec((0usize..2, 0usize..200), 0..300),
        ) {
            let mut set = OccupancySet::new(n);
            let mut model = vec![false; n];
            for (op, raw) in ops {
                let insert = op == 1;
                let port = raw % n;
                if insert {
                    prop_assert_eq!(set.insert(port), !model[port]);
                    model[port] = true;
                } else {
                    prop_assert_eq!(set.remove(port), model[port]);
                    model[port] = false;
                }
                prop_assert_eq!(set.len(), model.iter().filter(|&&b| b).count());
            }
            // Every port agrees, and the cursor enumerates exactly the model.
            for (p, &occupied) in model.iter().enumerate() {
                prop_assert_eq!(set.contains(p), occupied);
            }
            let walked: Vec<usize> = set.iter().collect();
            let expected: Vec<usize> =
                (0..n).filter(|&p| model[p]).collect();
            prop_assert_eq!(walked, expected);
            // And next_at_or_after agrees with the model from every origin.
            for from in 0..=n {
                let want = (from..n).find(|&p| model[p]);
                prop_assert_eq!(set.next_at_or_after(from), want);
            }
        }
    }
}
