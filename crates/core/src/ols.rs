//! Weakly uniform random Orthogonal Latin Squares (§3.3.3).
//!
//! A Sprinklers switch must pick, for every one of the `N²` VOQs, a *primary
//! intermediate port* such that
//!
//! * the N VOQs originating at any single input port map to N **distinct**
//!   intermediate ports (each row of the assignment matrix is a permutation), and
//! * the N VOQs destined to any single output port also map to N **distinct**
//!   intermediate ports (each column is a permutation).
//!
//! A matrix with both properties is an Orthogonal Latin Square (OLS).  The
//! paper's stability analysis only requires the *marginal* distribution of
//! every row and every column to be a uniform random permutation — a *weakly
//! uniform random* OLS — which can be generated in `O(N log N)` time from two
//! independent uniform random permutations `σ_R` and `σ_C`:
//!
//! ```text
//! a(i, j) = (σ_R(i) + σ_C(j)) mod N
//! ```
//!
//! (The paper adds 1 because it is 1-indexed; this crate is 0-indexed.)

use crate::perm::Permutation;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A weakly uniform random Orthogonal Latin Square over `{0, …, N−1}`.
///
/// Entry `(i, j)` is the primary intermediate port of the VOQ at input `i`
/// destined to output `j`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeaklyUniformOls {
    n: usize,
    row_perm: Permutation,
    col_perm: Permutation,
}

impl WeaklyUniformOls {
    /// Generate a weakly uniform random OLS of order `n`.
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        WeaklyUniformOls {
            n,
            row_perm: Permutation::random(n, rng),
            col_perm: Permutation::random(n, rng),
        }
    }

    /// Build an OLS from two explicit permutations (useful for tests and for
    /// reproducing a known configuration).
    pub fn from_permutations(row_perm: Permutation, col_perm: Permutation) -> Self {
        assert_eq!(
            row_perm.len(),
            col_perm.len(),
            "row and column permutations must have the same order"
        );
        WeaklyUniformOls {
            n: row_perm.len(),
            row_perm,
            col_perm,
        }
    }

    /// The identity-based OLS `a(i, j) = (i + j) mod N` (deterministic; used
    /// by tests and as a degenerate configuration).
    pub fn cyclic(n: usize) -> Self {
        WeaklyUniformOls {
            n,
            row_perm: Permutation::identity(n),
            col_perm: Permutation::identity(n),
        }
    }

    /// Order of the square (the switch size N).
    pub fn order(&self) -> usize {
        self.n
    }

    /// Primary intermediate port of the VOQ at input `i` destined to output `j`.
    pub fn primary_port(&self, input: usize, output: usize) -> usize {
        (self.row_perm.apply(input) + self.col_perm.apply(output)) % self.n
    }

    /// The full row for input `i`: `row(i)[j]` is the primary port of VOQ `(i, j)`.
    pub fn row(&self, input: usize) -> Vec<usize> {
        (0..self.n).map(|j| self.primary_port(input, j)).collect()
    }

    /// The full column for output `j`: `column(j)[i]` is the primary port of VOQ `(i, j)`.
    pub fn column(&self, output: usize) -> Vec<usize> {
        (0..self.n).map(|i| self.primary_port(i, output)).collect()
    }

    /// For a given input `i` and intermediate port `p`, the output `j` whose
    /// VOQ `(i, j)` has `p` as its primary port.  This is the `σ⁻¹` the
    /// stability analysis manipulates.
    pub fn output_with_primary(&self, input: usize, port: usize) -> usize {
        // (row_perm(i) + col_perm(j)) ≡ port  (mod n)
        let target = (port + self.n - self.row_perm.apply(input) % self.n) % self.n;
        self.col_perm.invert(target)
    }

    /// Check the defining OLS property: every row and every column is a
    /// permutation of `{0, …, N−1}`.  O(N²); intended for tests and debugging.
    pub fn is_valid(&self) -> bool {
        for i in 0..self.n {
            if Permutation::from_mapping(self.row(i)).is_none() {
                return false;
            }
        }
        for j in 0..self.n {
            if Permutation::from_mapping(self.column(j)).is_none() {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cyclic_square_is_valid() {
        for n in [1usize, 2, 4, 8, 32] {
            assert!(WeaklyUniformOls::cyclic(n).is_valid(), "n = {n}");
        }
    }

    #[test]
    fn random_square_is_valid() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in [2usize, 4, 8, 16, 64] {
            let ols = WeaklyUniformOls::random(n, &mut rng);
            assert!(ols.is_valid(), "n = {n}");
        }
    }

    #[test]
    fn rows_and_columns_are_permutations() {
        let mut rng = StdRng::seed_from_u64(17);
        let n = 16;
        let ols = WeaklyUniformOls::random(n, &mut rng);
        for i in 0..n {
            assert!(Permutation::from_mapping(ols.row(i)).is_some());
            assert!(Permutation::from_mapping(ols.column(i)).is_some());
        }
    }

    #[test]
    fn output_with_primary_inverts_primary_port() {
        let mut rng = StdRng::seed_from_u64(23);
        let n = 32;
        let ols = WeaklyUniformOls::random(n, &mut rng);
        for i in 0..n {
            for j in 0..n {
                let p = ols.primary_port(i, j);
                assert_eq!(ols.output_with_primary(i, p), j);
            }
        }
    }

    #[test]
    fn rows_are_marginally_uniform() {
        // Weak uniformity: over many random OLSes, the primary port of a fixed
        // VOQ (0, 0) should be uniform over 0..n.  Chi-square style sanity
        // check with loose bounds.
        let n = 8;
        let samples = 8000;
        let mut counts = vec![0usize; n];
        let mut rng = StdRng::seed_from_u64(2024);
        for _ in 0..samples {
            let ols = WeaklyUniformOls::random(n, &mut rng);
            counts[ols.primary_port(0, 0)] += 1;
        }
        let expected = samples / n;
        for (port, c) in counts.iter().enumerate() {
            assert!(
                (*c as i64 - expected as i64).unsigned_abs() < (expected as u64) / 3,
                "port {port} appeared {c} times, expected ≈{expected}"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = WeaklyUniformOls::random(16, &mut StdRng::seed_from_u64(3));
        let b = WeaklyUniformOls::random(16, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }
}
