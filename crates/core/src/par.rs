//! A persistent worker pool for deterministic intra-slot parallelism.
//!
//! The fabric phases of a switch partition cleanly by port: at a fixed slot
//! each input owns one intermediate and each intermediate one output, so a
//! phase's occupied-port walk can be split into contiguous port ranges and
//! stepped concurrently, with every cross-range effect (bitset updates,
//! counters, sink deliveries) deferred to a serial merge in ascending port
//! order.  That merge is what keeps the delivery stream byte-identical to the
//! serial walk — the same submission-order-reassembly trick the spec-level
//! parallel executor uses — so the `threads` knob is a pure performance
//! setting, excluded from scientific identity exactly like `batch`.
//!
//! [`StepPool`] keeps its threads alive across slots (spawning per slot would
//! cost more than a sparse slot does) and hands each worker a fixed shard
//! index; [`StepPool::run_on_ranges`] is the safe entry point that splits one
//! `&mut [T]` into disjoint per-shard sub-slices plus a per-shard scratch
//! buffer.  All `unsafe` in the workspace lives in this module, behind that
//! checked-disjointness API.
//!
//! This module is cold-path orchestration: jobs are published under a
//! `Mutex`/`Condvar` pair (allowed by the determinism lint — unlike clocks or
//! random state, blocking primitives cannot leak nondeterminism into results
//! that are merged in a fixed order).
#![allow(unsafe_code)]

use std::marker::PhantomData;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Type-erased pointer to the job closure of the current epoch.
///
/// The pointee is `Sync` and the pointer is only dereferenced while the
/// submitting thread is blocked inside [`StepPool::run`], which keeps the
/// underlying borrow alive for every dereference.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: see `JobPtr` — the pointee is `Sync`, and `StepPool::run` does not
// return (and therefore the borrow it erases does not end) until every
// participating worker has finished dereferencing the pointer.
unsafe impl Send for JobPtr {}

struct JobState {
    /// Bumped once per `run` call; workers use it to detect new jobs.
    epoch: u64,
    /// Shard count of the current epoch; worker `k` executes shard `k + 1`
    /// when `k + 1 < shards` (the submitting thread executes shard 0).
    shards: usize,
    job: Option<JobPtr>,
    /// Participating workers that have not yet finished the current epoch.
    remaining: usize,
    /// Set if a worker's job panicked; the pool is unusable afterwards.
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<JobState>,
    /// Workers wait here for a new epoch (or shutdown).
    work: Condvar,
    /// `run` waits here for `remaining == 0`.
    done: Condvar,
}

/// A fixed-size pool of step workers with static shard assignment.
///
/// `run(shards, job)` executes `job(0)` on the calling thread and
/// `job(1..shards)` on the pool, returning only when every shard finished —
/// the two fabric phases of a slot stay strictly sequential.  Shard-to-data
/// assignment is by shard index, so results cannot depend on which OS thread
/// ran a shard.
pub struct StepPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl StepPool {
    /// Spawn a pool with `helpers` worker threads (supporting up to
    /// `helpers + 1` shards including the caller's).
    pub fn new(helpers: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(JobState {
                epoch: 0,
                shards: 0,
                job: None,
                remaining: 0,
                panicked: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (0..helpers)
            .map(|k| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sprinklers-step-{k}"))
                    .spawn(move || worker_loop(&shared, k))
                    .expect("failed to spawn a step worker thread")
            })
            .collect();
        StepPool { shared, workers }
    }

    /// Number of helper threads (maximum shards minus the caller's one).
    pub fn helpers(&self) -> usize {
        self.workers.len()
    }

    /// Execute `job(s)` for every shard `s in 0..shards` and wait for all of
    /// them; shard 0 runs on the calling thread.
    ///
    /// # Panics
    ///
    /// Panics if `shards - 1` exceeds [`Self::helpers`], or if a worker's job
    /// panicked (in this call or an earlier one — the pool does not survive a
    /// worker panic).
    pub fn run(&self, shards: usize, job: &(dyn Fn(usize) + Sync)) {
        let helpers = shards.saturating_sub(1);
        assert!(
            helpers <= self.workers.len(),
            "StepPool::run asked for {shards} shards but the pool has only \
             {} helper threads",
            self.workers.len()
        );
        if helpers == 0 {
            job(0);
            return;
        }
        {
            let mut st = self.shared.state.lock().expect("step pool poisoned");
            assert!(!st.panicked, "a step worker panicked in an earlier slot");
            let ptr = job as *const (dyn Fn(usize) + Sync + '_);
            // SAFETY: only the borrow lifetime is erased; workers dereference
            // the pointer exclusively between this publication and the
            // `remaining == 0` handshake below, and this function does not
            // return (so `job` stays borrowed) until that handshake.
            let ptr: *const (dyn Fn(usize) + Sync + 'static) = unsafe { std::mem::transmute(ptr) };
            st.job = Some(JobPtr(ptr));
            st.shards = shards;
            st.remaining = helpers;
            st.epoch += 1;
        }
        self.shared.work.notify_all();
        job(0);
        let mut st = self.shared.state.lock().expect("step pool poisoned");
        while st.remaining > 0 {
            st = self.shared.done.wait(st).expect("step pool poisoned");
        }
        st.job = None;
        assert!(!st.panicked, "a step worker panicked during this slot");
    }

    /// Split `data` into the given sorted, disjoint, half-open index ranges
    /// and run `f(shard, &mut data[lo..hi], &mut scratch[shard])` for every
    /// shard concurrently — the safe facade over [`Self::run`] that the
    /// switch phases use.  Range disjointness is validated here, so callers
    /// need no unsafe code.
    pub fn run_on_ranges<T, R, F>(
        &self,
        data: &mut [T],
        ranges: &[(usize, usize)],
        scratch: &mut [Vec<R>],
        f: F,
    ) where
        T: Send,
        R: Send,
        F: Fn(usize, &mut [T], &mut Vec<R>) + Sync,
    {
        let shards = ranges.len();
        assert_eq!(scratch.len(), shards, "one scratch buffer per shard");
        let mut prev = 0usize;
        for &(lo, hi) in ranges {
            assert!(
                lo >= prev && lo <= hi && hi <= data.len(),
                "shard ranges must be sorted, disjoint and in bounds"
            );
            prev = hi;
        }
        let data_span = RawSpan::new(data);
        let scratch_span = RawSpan::new(scratch);
        self.run(shards, &|s| {
            let (lo, hi) = ranges[s];
            // SAFETY: the ranges were validated sorted and disjoint above,
            // `run` executes each shard index exactly once per call, and the
            // source `&mut` borrows are held (unused) across `run` — so each
            // reborrow below is exclusive and in bounds.
            let local = unsafe { std::slice::from_raw_parts_mut(data_span.ptr().add(lo), hi - lo) };
            // SAFETY: as above — shard `s` is the only accessor of
            // `scratch[s]`, and `s < shards == scratch.len()`.
            let out = unsafe { &mut *scratch_span.ptr().add(s) };
            f(s, local, out);
        });
    }
}

impl Drop for StepPool {
    fn drop(&mut self) {
        if let Ok(mut st) = self.shared.state.lock() {
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for StepPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StepPool")
            .field("helpers", &self.workers.len())
            .finish()
    }
}

/// A `Sync` wrapper around a raw slice base pointer, used by
/// [`StepPool::run_on_ranges`] to move the base address into the job closure.
struct RawSpan<'a, T> {
    ptr: *mut T,
    _marker: PhantomData<&'a mut [T]>,
}

impl<'a, T> RawSpan<'a, T> {
    fn new(slice: &'a mut [T]) -> Self {
        RawSpan {
            ptr: slice.as_mut_ptr(),
            _marker: PhantomData,
        }
    }

    fn ptr(&self) -> *mut T {
        self.ptr
    }
}

// SAFETY: `RawSpan` is only a base address; `run_on_ranges` derives disjoint
// sub-slices from it (validated ranges, one shard per index), so with
// `T: Send` those exclusive accesses may happen from worker threads.
unsafe impl<T: Send> Sync for RawSpan<'_, T> {}

fn worker_loop(shared: &Shared, index: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let (job, epoch, participate) = {
            let mut st = shared.state.lock().expect("step pool poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    break;
                }
                st = shared.work.wait(st).expect("step pool poisoned");
            }
            (st.job, st.epoch, index + 1 < st.shards)
        };
        seen_epoch = epoch;
        if !participate {
            continue;
        }
        let Some(job) = job else { continue };
        let mut guard = DoneGuard {
            shared,
            clean: false,
        };
        // SAFETY: `StepPool::run` keeps the closure borrow alive until this
        // worker (a participant of the current epoch) decrements `remaining`,
        // which the guard only does after this call returns or unwinds.
        (unsafe { &*job.0 })(index + 1);
        guard.clean = true;
    }
}

/// Decrements `remaining` when dropped — including on unwind, so a panicking
/// job wakes the submitter (which then reports the poisoned pool) instead of
/// deadlocking it.
struct DoneGuard<'a> {
    shared: &'a Shared,
    clean: bool,
}

impl Drop for DoneGuard<'_> {
    fn drop(&mut self) {
        let mut st = match self.shared.state.lock() {
            Ok(st) => st,
            Err(poisoned) => poisoned.into_inner(),
        };
        if !self.clean {
            st.panicked = true;
        }
        st.remaining -= 1;
        drop(st);
        self.shared.done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_executes_every_shard_exactly_once() {
        let pool = StepPool::new(3);
        assert_eq!(pool.helpers(), 3);
        for shards in 1..=4usize {
            let hits: Vec<AtomicUsize> = (0..shards).map(|_| AtomicUsize::new(0)).collect();
            pool.run(shards, &|s| {
                hits[s].fetch_add(1, Ordering::SeqCst);
            });
            for (s, hit) in hits.iter().enumerate() {
                assert_eq!(hit.load(Ordering::SeqCst), 1, "shard {s} of {shards}");
            }
        }
    }

    #[test]
    fn run_on_ranges_gives_each_shard_its_disjoint_slice() {
        let pool = StepPool::new(2);
        let mut data: Vec<usize> = vec![0; 10];
        let ranges = [(0usize, 4usize), (4, 7), (7, 10)];
        let mut scratch: Vec<Vec<usize>> = vec![Vec::new(); 3];
        for round in 1..=3usize {
            pool.run_on_ranges(&mut data, &ranges, &mut scratch, |s, local, out| {
                out.clear();
                for (k, cell) in local.iter_mut().enumerate() {
                    *cell += round * 100 + s * 10;
                    out.push(ranges[s].0 + k);
                }
            });
            // Scratch buffers report exactly the indexes of their range.
            for (s, &(lo, hi)) in ranges.iter().enumerate() {
                let want: Vec<usize> = (lo..hi).collect();
                assert_eq!(scratch[s], want);
            }
        }
        for (idx, &cell) in data.iter().enumerate() {
            let shard = match idx {
                0..=3 => 0,
                4..=6 => 1,
                _ => 2,
            };
            assert_eq!(cell, (100 + 200 + 300) + 3 * shard * 10, "index {idx}");
        }
    }

    #[test]
    fn sequential_runs_reuse_the_same_workers() {
        let pool = StepPool::new(1);
        let counter = AtomicUsize::new(0);
        for _ in 0..500 {
            pool.run(2, &|_s| {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(counter.load(Ordering::SeqCst), 1000);
    }

    #[test]
    #[should_panic(expected = "asked for 3 shards")]
    fn too_many_shards_is_reported() {
        let pool = StepPool::new(1);
        pool.run(3, &|_| {});
    }

    #[test]
    #[should_panic(expected = "sorted, disjoint")]
    fn overlapping_ranges_are_rejected() {
        let pool = StepPool::new(1);
        let mut data = [0u8; 8];
        let mut scratch: Vec<Vec<u8>> = vec![Vec::new(); 2];
        pool.run_on_ranges(&mut data, &[(0, 5), (4, 8)], &mut scratch, |_, _, _| {});
    }
}
