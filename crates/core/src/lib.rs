//! # Sprinklers: reordering-free load-balanced switching
//!
//! This crate implements the *Sprinklers* switch architecture from
//! "Sprinklers: A Randomized Variable-Size Striping Approach to Reordering-Free
//! Load-Balanced Switching" (Ding, Xu, Dai, Song, Lin — CoNEXT 2014), together
//! with every building block it relies on:
//!
//! * [`dyadic`] — dyadic (power-of-two aligned) intervals of intermediate ports.
//!   Two dyadic intervals either nest or are disjoint, which is what lets the
//!   Largest-Stripe-First scheduler serve stripes without interleaving.
//! * [`sizing`] — the stripe-size rule `F(r) = min(N, 2^⌈log₂(r·N²)⌉)` that maps
//!   a VOQ's rate to a power-of-two stripe size (Eq. (1) of the paper).
//! * [`perm`] / [`ols`] — uniform random permutations and the *weakly uniform
//!   random Orthogonal Latin Square* used to pick a primary intermediate port
//!   for every one of the N² VOQs, so that both the row (per input) and the
//!   column (per output) mappings are uniform random permutations.
//! * [`stripe`] / [`voq`] — chronological grouping of a VOQ's packets into
//!   stripes, and the per-VOQ state machine (including adaptive resizing with a
//!   clearance phase).
//! * [`lsf`] — the N×(log₂N+1) grid of FIFO queues that implements the
//!   Largest Stripe First policy in constant time per slot (§3.4.2, Fig. 4).
//! * [`occupancy`] — hierarchical port-occupancy bitsets that let the per-slot
//!   fabric loops visit only occupied ports, making a step O(occupied) instead
//!   of O(N) in the sparse regimes (low load, drain tails) that dominate
//!   simulated time.
//! * [`par`] — a persistent worker pool ([`par::StepPool`]) for deterministic
//!   intra-slot parallelism: the fabric phases shard by contiguous port range
//!   and merge their effects in ascending port order, so any thread count
//!   produces byte-identical output.
//! * [`input_port`] / [`intermediate_port`] — the two scheduling stages.
//! * [`sprinklers`] — the full two-stage switch, wiring the periodic connection
//!   patterns of both fabrics to the per-port schedulers.
//! * [`switch`] — the [`switch::Switch`] trait shared by Sprinklers and all the
//!   baseline switches in `sprinklers-baselines`, plus the push-based
//!   [`switch::DeliverySink`] that receives delivered packets.  The engine in
//!   `sprinklers-sim` drives any implementation interchangeably.
//!
//! ## The sink-based fast path
//!
//! A switch advances one time slot with
//! [`Switch::step(slot, &mut sink)`](switch::Switch::step): every packet that
//! reaches its output port during the slot is *pushed* into the caller's
//! [`DeliverySink`](switch::DeliverySink) instead of being returned in a
//! freshly allocated `Vec`.  The steady-state simulation loop therefore does
//! no per-slot heap allocation — the property that lets the constant-time LSF
//! scheduler (§3.4.2 of the paper) actually run at hardware-like speed in the
//! simulator.  `Vec<DeliveredPacket>` implements `DeliverySink` for tests and
//! examples that want to inspect deliveries;
//! [`NullSink`](switch::NullSink) discards them and
//! [`CountingSink`](switch::CountingSink) tallies them.
//!
//! ## Quick example
//!
//! ```
//! use sprinklers_core::prelude::*;
//!
//! // A 16-port Sprinklers switch with stripe sizes derived from a lightly
//! // loaded uniform traffic matrix (every VOQ gets a unit stripe).
//! let n = 16;
//! let matrix = TrafficMatrix::uniform(n, 0.03);
//! let config = SprinklersConfig::new(n).with_sizing(SizingMode::FromMatrix(matrix));
//! let mut sw = SprinklersSwitch::new(config, 42);
//!
//! // Inject one packet and step the switch until it pops out at the output.
//! // A `Vec<DeliveredPacket>` is a valid `DeliverySink`, so tests can simply
//! // collect; the simulation engine passes its metrics pipeline instead.
//! sw.arrive(Packet::new(0, 3, 0, 0));
//! let mut delivered = Vec::new();
//! for slot in 0..(4 * n as u64) {
//!     sw.step(slot, &mut delivered);
//! }
//! assert_eq!(delivered.len(), 1);
//! assert_eq!(delivered[0].packet.output(), 3);
//!
//! // Drain loops that don't care about the packets use the no-op sink.
//! sw.step(4 * n as u64, &mut NullSink);
//! ```

// Unsafe code is denied crate-wide; the single, lint-audited exception is
// `par`, whose worker pool must erase one closure lifetime and split one
// slice into disjoint per-shard sub-slices (every block carries a
// `// SAFETY:` justification, enforced by `sprinklers-lint`).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod dyadic;
pub mod error;
pub mod input_port;
pub mod intermediate_port;
pub mod lsf;
pub mod matrix;
pub mod occupancy;
pub mod ols;
pub mod packet;
pub mod par;
pub mod perm;
pub mod rate_estimator;
pub mod schedule_view;
pub mod sizing;
pub mod sprinklers;
pub mod stripe;
pub mod switch;
pub mod voq;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::config::{AlignmentMode, SizingMode, SprinklersConfig};
    pub use crate::dyadic::DyadicInterval;
    pub use crate::matrix::TrafficMatrix;
    pub use crate::ols::WeaklyUniformOls;
    pub use crate::packet::{DeliveredPacket, Packet};
    pub use crate::sizing::stripe_size;
    pub use crate::sprinklers::SprinklersSwitch;
    pub use crate::switch::{CountingSink, DeliverySink, NullSink, Switch, SwitchStats};
}

pub use config::{AlignmentMode, SizingMode, SprinklersConfig};
pub use dyadic::DyadicInterval;
pub use matrix::TrafficMatrix;
pub use packet::{DeliveredPacket, Packet};
pub use sprinklers::SprinklersSwitch;
pub use switch::{CountingSink, DeliverySink, NullSink, Switch, SwitchStats};
