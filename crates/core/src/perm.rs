//! Uniform random permutations (Fisher–Yates / Durstenfeld).
//!
//! The paper's stripe-interval generation requires sampling permutations of
//! `{0, …, N−1}` uniformly at random (reference [7] of the paper, Durstenfeld's
//! Algorithm 235).  This module provides that plus a small `Permutation`
//! wrapper with inverse lookup, which the Orthogonal Latin Square and the
//! Sprinklers switch both use.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A permutation of `{0, 1, …, n−1}` with O(1) forward and inverse lookup.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Permutation {
    forward: Vec<usize>,
    inverse: Vec<usize>,
}

impl Permutation {
    /// The identity permutation on `n` elements.
    pub fn identity(n: usize) -> Self {
        let forward: Vec<usize> = (0..n).collect();
        let inverse = forward.clone();
        Permutation { forward, inverse }
    }

    /// Sample a permutation of `n` elements uniformly at random using the
    /// Fisher–Yates shuffle.
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        let mut forward: Vec<usize> = (0..n).collect();
        // Durstenfeld's in-place variant: O(n) time, n-1 random draws.
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            forward.swap(i, j);
        }
        Self::from_mapping(forward).expect("shuffle of 0..n is a permutation")
    }

    /// Build a permutation from an explicit mapping `i → mapping[i]`.
    ///
    /// Returns `None` if `mapping` is not a permutation of `0..mapping.len()`.
    pub fn from_mapping(mapping: Vec<usize>) -> Option<Self> {
        let n = mapping.len();
        let mut inverse = vec![usize::MAX; n];
        for (i, &v) in mapping.iter().enumerate() {
            if v >= n || inverse[v] != usize::MAX {
                return None;
            }
            inverse[v] = i;
        }
        Some(Permutation {
            forward: mapping,
            inverse,
        })
    }

    /// Number of elements the permutation acts on.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// True if the permutation acts on zero elements.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Apply the permutation: `σ(i)`.
    pub fn apply(&self, i: usize) -> usize {
        self.forward[i]
    }

    /// Apply the inverse permutation: `σ⁻¹(v)`.
    pub fn invert(&self, v: usize) -> usize {
        self.inverse[v]
    }

    /// The forward mapping as a slice.
    pub fn as_slice(&self) -> &[usize] {
        &self.forward
    }

    /// Compose with another permutation: `(self ∘ other)(i) = self(other(i))`.
    ///
    /// # Panics
    ///
    /// Panics if the permutations act on different numbers of elements.
    pub fn compose(&self, other: &Permutation) -> Permutation {
        assert_eq!(
            self.len(),
            other.len(),
            "cannot compose permutations of different sizes"
        );
        let mapping: Vec<usize> = (0..self.len())
            .map(|i| self.apply(other.apply(i)))
            .collect();
        Self::from_mapping(mapping).expect("composition of permutations is a permutation")
    }

    /// The inverse permutation as a new `Permutation`.
    pub fn inverse(&self) -> Permutation {
        Permutation {
            forward: self.inverse.clone(),
            inverse: self.forward.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn identity_maps_every_element_to_itself() {
        let p = Permutation::identity(8);
        for i in 0..8 {
            assert_eq!(p.apply(i), i);
            assert_eq!(p.invert(i), i);
        }
    }

    #[test]
    fn from_mapping_rejects_non_permutations() {
        assert!(Permutation::from_mapping(vec![0, 0, 1]).is_none());
        assert!(Permutation::from_mapping(vec![0, 3]).is_none());
        assert!(Permutation::from_mapping(vec![2, 0, 1]).is_some());
        assert!(Permutation::from_mapping(vec![]).is_some());
    }

    #[test]
    fn random_is_a_permutation_and_inverse_is_consistent() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1usize, 2, 5, 16, 257] {
            let p = Permutation::random(n, &mut rng);
            let values: HashSet<usize> = (0..n).map(|i| p.apply(i)).collect();
            assert_eq!(values.len(), n);
            for i in 0..n {
                assert_eq!(p.invert(p.apply(i)), i);
                assert_eq!(p.apply(p.invert(i)), i);
            }
        }
    }

    #[test]
    fn random_permutations_are_roughly_uniform() {
        // For n = 3 there are 6 permutations; with 6000 samples each should
        // appear ~1000 times.  A very loose tolerance keeps the test robust.
        let mut rng = StdRng::seed_from_u64(1234);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..6000 {
            let p = Permutation::random(3, &mut rng);
            *counts.entry(p.as_slice().to_vec()).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 6);
        for (_, c) in counts {
            assert!(
                c > 800 && c < 1200,
                "count {c} is implausible for a uniform sampler"
            );
        }
    }

    #[test]
    fn compose_and_inverse() {
        let p = Permutation::from_mapping(vec![2, 0, 1, 3]).unwrap();
        let q = Permutation::from_mapping(vec![1, 2, 3, 0]).unwrap();
        let pq = p.compose(&q);
        for i in 0..4 {
            assert_eq!(pq.apply(i), p.apply(q.apply(i)));
        }
        let id = p.compose(&p.inverse());
        assert_eq!(id, Permutation::identity(4));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Permutation::random(64, &mut StdRng::seed_from_u64(99));
        let b = Permutation::random(64, &mut StdRng::seed_from_u64(99));
        assert_eq!(a, b);
    }
}
