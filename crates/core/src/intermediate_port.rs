//! A Sprinklers intermediate port: one physical row of every output's
//! distributed virtual LSF schedule grid (§3.4.3).
//!
//! Each intermediate port keeps, for every output `j`, one FIFO queue per
//! stripe-size level.  Together with the identical structures at the other
//! `N − 1` intermediate ports these form the *virtual schedule grid* for
//! output `j`; the only coordination the paper requires is that every packet
//! carries its stripe size in an internal header, which the [`crate::packet::Packet`]
//! type models with its `stripe_size` field.
//!
//! When the second fabric connects this port to output `j`, the port scans
//! output `j`'s queues from the largest stripe-size level down and sends the
//! head of the first non-empty queue — the same Largest-Stripe-First rule the
//! input ports use.

use crate::config::AlignmentMode;
use crate::lsf::levels;
use crate::packet::Packet;
use std::collections::VecDeque;

/// A packet staged until its whole stripe has reached the intermediate stage
/// (only used in [`AlignmentMode::StripeComplete`]).
#[derive(Debug, Clone)]
struct StagedPacket {
    packet: Packet,
    /// Slot at which the packet becomes eligible for the second fabric.
    eligible_at: u64,
    /// Canonical key that orders stripes identically at every intermediate
    /// port: the VOQ sequence number of the *first* packet of the stripe.
    stripe_key: (usize, usize, u64),
}

/// One Sprinklers intermediate port.
pub struct SprinklersIntermediatePort {
    port_id: usize,
    n: usize,
    levels: usize,
    alignment: AlignmentMode,
    /// `queues[output][level]`: eligible packets destined to `output` that
    /// belong to stripes of size `2^level`, in arrival (FIFO) order.
    queues: Vec<Vec<VecDeque<Packet>>>,
    /// Eligible packets per output (sum over levels), so a [`Self::dequeue`]
    /// miss — the common case when the sparse stepping loop probes whichever
    /// output the fabric rotation reaches — is one counter load instead of a
    /// scan over every stripe-size level.
    eligible_per_output: Vec<u32>,
    /// Packets waiting for stripe-completion alignment.
    staged: Vec<StagedPacket>,
    /// Scratch for [`Self::release_eligible`], held on the struct so the
    /// per-slot release pass allocates nothing in steady state.
    ready_scratch: Vec<StagedPacket>,
    /// Second scratch for the not-yet-eligible half of the partition.
    waiting_scratch: Vec<StagedPacket>,
    queued: usize,
}

impl SprinklersIntermediatePort {
    /// Create intermediate port `port_id` of an `n`-port switch.
    pub fn new(port_id: usize, n: usize, alignment: AlignmentMode) -> Self {
        assert!(n.is_power_of_two());
        let lv = levels(n);
        SprinklersIntermediatePort {
            port_id,
            n,
            levels: lv,
            alignment,
            queues: (0..n)
                .map(|_| (0..lv).map(|_| VecDeque::new()).collect())
                .collect(),
            eligible_per_output: vec![0; n],
            staged: Vec::new(),
            ready_scratch: Vec::new(),
            waiting_scratch: Vec::new(),
            queued: 0,
        }
    }

    /// This port's index.
    pub fn port_id(&self) -> usize {
        self.port_id
    }

    /// Total packets buffered at this port (eligible + staged).
    pub fn queued_packets(&self) -> usize {
        self.queued + self.staged.len()
    }

    /// Packets buffered for a particular output.
    pub fn queued_for_output(&self, output: usize) -> usize {
        self.queues[output].iter().map(VecDeque::len).sum::<usize>()
            + self
                .staged
                .iter()
                .filter(|s| s.packet.output() == output)
                .count()
    }

    /// Accept a packet from the first fabric at slot `now`.
    pub fn receive(&mut self, packet: Packet, now: u64) {
        debug_assert_eq!(packet.intermediate(), self.port_id);
        debug_assert!(packet.output() < self.n);
        debug_assert!(packet.stripe_size() >= 1 && packet.stripe_size().is_power_of_two());
        match self.alignment {
            AlignmentMode::Immediate => self.enqueue(packet),
            AlignmentMode::StripeComplete => {
                // The last packet of this stripe reaches the intermediate
                // stage `stripe_size - 1 - stripe_index` slots after this one
                // (stripes leave the input port in consecutive slots).  The
                // stripe becomes eligible at the next frame boundary after
                // that, a value every port of the stripe computes identically.
                let last_arrival = now + (packet.stripe_size() - 1 - packet.stripe_index()) as u64;
                let eligible_at = (last_arrival / self.n as u64 + 1) * self.n as u64;
                let stripe_key = (
                    packet.input(),
                    packet.output(),
                    packet.voq_seq.saturating_sub(packet.stripe_index() as u64),
                );
                self.staged.push(StagedPacket {
                    packet,
                    eligible_at,
                    stripe_key,
                });
            }
        }
    }

    /// Move staged packets whose stripes are complete into the eligible
    /// queues.  Must be called once per slot (before [`Self::dequeue`]) when
    /// stripe-complete alignment is enabled; it is a no-op otherwise.
    pub fn release_eligible(&mut self, now: u64) {
        if self.alignment == AlignmentMode::Immediate || self.staged.is_empty() {
            return;
        }
        // Partition into the two reusable scratch buffers, preserving staging
        // order (the stable sort below falls back to it on key ties), then
        // swap the waiting half back in.  In steady state all three vectors
        // keep their capacity, so this per-slot pass allocates nothing.
        let mut ready = std::mem::take(&mut self.ready_scratch);
        let mut waiting = std::mem::take(&mut self.waiting_scratch);
        ready.clear();
        waiting.clear();
        for s in self.staged.drain(..) {
            if s.eligible_at <= now {
                ready.push(s);
            } else {
                waiting.push(s);
            }
        }
        std::mem::swap(&mut self.staged, &mut waiting);
        // Insert in a canonical order so every intermediate port builds its
        // FIFOs in the same stripe order.
        ready.sort_by_key(|s| (s.eligible_at, s.stripe_key));
        for s in ready.drain(..) {
            self.enqueue(s.packet);
        }
        self.ready_scratch = ready;
        self.waiting_scratch = waiting;
    }

    /// Serve output `output`: return the packet to send over the second
    /// fabric in this slot, or `None` if nothing is eligible for that output.
    pub fn dequeue(&mut self, output: usize) -> Option<Packet> {
        if self.eligible_per_output[output] == 0 {
            return None;
        }
        for level in (0..self.levels).rev() {
            if let Some(p) = self.queues[output][level].pop_front() {
                self.queued -= 1;
                self.eligible_per_output[output] -= 1;
                return Some(p);
            }
        }
        unreachable!("eligible_per_output[{output}] desynchronized from the level FIFOs")
    }

    fn enqueue(&mut self, packet: Packet) {
        let level = packet.stripe_size().trailing_zeros() as usize;
        debug_assert!(level < self.levels);
        self.eligible_per_output[packet.output()] += 1;
        self.queues[packet.output()][level].push_back(packet);
        self.queued += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(output: usize, stripe_size: usize, stripe_index: usize, intermediate: usize) -> Packet {
        let mut p = Packet::new(0, output, 0, 0);
        p.set_stripe_size(stripe_size);
        p.set_stripe_index(stripe_index);
        p.set_intermediate(intermediate);
        p
    }

    fn pkt_from(
        input: usize,
        output: usize,
        stripe_size: usize,
        stripe_index: usize,
        intermediate: usize,
    ) -> Packet {
        let mut p = Packet::new(input, output, 0, 0);
        p.set_stripe_size(stripe_size);
        p.set_stripe_index(stripe_index);
        p.set_intermediate(intermediate);
        p
    }

    #[test]
    fn immediate_mode_serves_largest_stripe_first() {
        let mut port = SprinklersIntermediatePort::new(2, 8, AlignmentMode::Immediate);
        port.receive(pkt(5, 1, 0, 2), 0);
        port.receive(pkt(5, 8, 2, 2), 1);
        assert_eq!(port.queued_packets(), 2);
        assert_eq!(port.queued_for_output(5), 2);
        assert_eq!(port.queued_for_output(4), 0);
        let first = port.dequeue(5).unwrap();
        assert_eq!(first.stripe_size(), 8, "LSF serves the larger stripe first");
        let second = port.dequeue(5).unwrap();
        assert_eq!(second.stripe_size(), 1);
        assert!(port.dequeue(5).is_none());
    }

    #[test]
    fn packets_are_fifo_within_a_level() {
        let mut port = SprinklersIntermediatePort::new(0, 4, AlignmentMode::Immediate);
        let mut a = pkt(1, 2, 0, 0);
        a.voq_seq = 10;
        let mut b = pkt(1, 2, 0, 0);
        b.voq_seq = 20;
        port.receive(a, 0);
        port.receive(b, 4);
        assert_eq!(port.dequeue(1).unwrap().voq_seq, 10);
        assert_eq!(port.dequeue(1).unwrap().voq_seq, 20);
    }

    #[test]
    fn stripe_complete_mode_stages_until_frame_boundary() {
        let n = 8;
        let mut port = SprinklersIntermediatePort::new(3, n, AlignmentMode::StripeComplete);
        // A packet with stripe_index 0 of a size-4 stripe arriving at slot 10:
        // the last packet arrives at slot 13, so the stripe becomes eligible
        // at the next frame boundary after 13, i.e. slot 16.
        port.receive(pkt(6, 4, 0, 3), 10);
        assert_eq!(port.queued_packets(), 1);
        port.release_eligible(12);
        assert!(
            port.dequeue(6).is_none(),
            "not eligible before the stripe completes"
        );
        port.release_eligible(15);
        assert!(
            port.dequeue(6).is_none(),
            "not eligible before the frame boundary"
        );
        port.release_eligible(16);
        assert!(port.dequeue(6).is_some());
    }

    #[test]
    fn stripe_complete_release_orders_by_eligibility_then_key() {
        let n = 4;
        let mut port = SprinklersIntermediatePort::new(0, n, AlignmentMode::StripeComplete);
        // Two size-1 stripes (same level) from different inputs, both eligible
        // at the same boundary; ordering must follow the canonical key.
        let mut late = pkt_from(3, 2, 1, 0, 0);
        late.voq_seq = 7;
        let mut early = pkt_from(1, 2, 1, 0, 0);
        early.voq_seq = 9;
        port.receive(late, 1);
        port.receive(early, 2);
        port.release_eligible(4);
        let first = port.dequeue(2).unwrap();
        assert_eq!(
            first.input(),
            1,
            "canonical order is by (input, output, stripe seq)"
        );
        let second = port.dequeue(2).unwrap();
        assert_eq!(second.input(), 3);
    }

    #[test]
    fn immediate_mode_release_is_a_noop() {
        let mut port = SprinklersIntermediatePort::new(0, 4, AlignmentMode::Immediate);
        port.receive(pkt(1, 1, 0, 0), 0);
        port.release_eligible(100);
        assert_eq!(port.queued_packets(), 1);
    }
}
