//! Packet representation shared by every switch in the workspace.
//!
//! The simulator works at packet granularity: every packet is a fixed-size
//! cell (one packet per port per time slot, the standard cell-switch model
//! used throughout the load-balanced switching literature and in the paper's
//! evaluation).

use serde::{Deserialize, Serialize};

/// A fixed-size packet (cell) flowing through a switch.
///
/// The identity fields (`input`, `output`, `flow`, `voq_seq`) are assigned at
/// arrival time and never change.  The routing fields (`stripe_size`,
/// `stripe_index`, `intermediate`) are filled in by the switch as the packet
/// is grouped into a stripe and forwarded across the two fabrics; they model
/// the small internal-use header the paper attaches to every packet
/// (log₂log₂N bits for the stripe size, §3.4.3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Globally unique packet identifier (assigned by the traffic generator).
    pub id: u64,
    /// Input port at which the packet arrived (`0..N`).
    pub input: usize,
    /// Output port the packet is destined to (`0..N`).
    pub output: usize,
    /// Application-flow identifier.  Packets of the same flow always share the
    /// same `(input, output)` pair; the TCP-hashing baseline additionally uses
    /// this to pick an intermediate port.
    pub flow: u64,
    /// Time slot at which the packet arrived at its input port.
    pub arrival_slot: u64,
    /// Sequence number within the packet's VOQ, i.e. within its
    /// `(input, output)` pair, assigned in arrival order starting from 0.
    ///
    /// Packet order is preserved if and only if, at every output, packets of
    /// the same VOQ depart in increasing `voq_seq` order.  Per-flow order
    /// follows because a flow is a subsequence of its VOQ.
    pub voq_seq: u64,
    /// Size of the stripe (or frame) this packet was grouped into.
    /// Zero until the packet is assigned to a stripe.
    pub stripe_size: usize,
    /// Index of this packet inside its stripe (`0..stripe_size`).
    pub stripe_index: usize,
    /// Intermediate port the packet was (or will be) routed through.
    /// Meaningful once the packet has crossed the first fabric.
    pub intermediate: usize,
    /// True for padding packets injected by schedulers that pad partial frames
    /// (the Padded Frames baseline).  Padding packets occupy switch capacity
    /// but are discarded at the output and never counted in delay or
    /// reordering statistics.
    pub is_padding: bool,
}

impl Packet {
    /// Create a new data packet with the given identity.
    ///
    /// Routing fields start zeroed; `voq_seq` is expected to be assigned by
    /// the traffic generator or the test harness (it defaults to 0 here).
    pub fn new(input: usize, output: usize, id: u64, arrival_slot: u64) -> Self {
        Packet {
            id,
            input,
            output,
            flow: 0,
            arrival_slot,
            voq_seq: 0,
            stripe_size: 0,
            stripe_index: 0,
            intermediate: 0,
            is_padding: false,
        }
    }

    /// Create a padding (fake) packet for schedulers that pad partial frames.
    pub fn padding(input: usize, output: usize, arrival_slot: u64) -> Self {
        Packet {
            id: u64::MAX,
            input,
            output,
            flow: u64::MAX,
            arrival_slot,
            voq_seq: u64::MAX,
            stripe_size: 0,
            stripe_index: 0,
            intermediate: 0,
            is_padding: true,
        }
    }

    /// Builder-style helper to set the flow identifier.
    #[must_use]
    pub fn with_flow(mut self, flow: u64) -> Self {
        self.flow = flow;
        self
    }

    /// Builder-style helper to set the VOQ sequence number.
    #[must_use]
    pub fn with_voq_seq(mut self, seq: u64) -> Self {
        self.voq_seq = seq;
        self
    }

    /// The VOQ this packet belongs to, as an `(input, output)` pair.
    pub fn voq(&self) -> (usize, usize) {
        (self.input, self.output)
    }
}

/// A packet together with the time slot at which it reached its output port.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliveredPacket {
    /// The delivered packet.
    pub packet: Packet,
    /// Slot at which the packet crossed the second fabric into its output.
    pub departure_slot: u64,
}

impl DeliveredPacket {
    /// Create a delivery record.
    pub fn new(packet: Packet, departure_slot: u64) -> Self {
        DeliveredPacket {
            packet,
            departure_slot,
        }
    }

    /// End-to-end delay of the packet in time slots (departure − arrival).
    ///
    /// Padding packets report a delay of 0.
    pub fn delay(&self) -> u64 {
        if self.packet.is_padding {
            return 0;
        }
        self.departure_slot.saturating_sub(self.packet.arrival_slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_packet_has_expected_identity() {
        let p = Packet::new(3, 7, 42, 100);
        assert_eq!(p.input, 3);
        assert_eq!(p.output, 7);
        assert_eq!(p.id, 42);
        assert_eq!(p.arrival_slot, 100);
        assert_eq!(p.voq(), (3, 7));
        assert!(!p.is_padding);
        assert_eq!(p.stripe_size, 0);
    }

    #[test]
    fn builder_helpers_set_fields() {
        let p = Packet::new(0, 1, 0, 0).with_flow(9).with_voq_seq(5);
        assert_eq!(p.flow, 9);
        assert_eq!(p.voq_seq, 5);
    }

    #[test]
    fn padding_packet_is_marked() {
        let p = Packet::padding(2, 4, 10);
        assert!(p.is_padding);
        assert_eq!(p.voq(), (2, 4));
    }

    #[test]
    fn delay_is_departure_minus_arrival() {
        let p = Packet::new(0, 0, 1, 10);
        let d = DeliveredPacket::new(p, 25);
        assert_eq!(d.delay(), 15);
    }

    #[test]
    fn delay_of_padding_packet_is_zero() {
        let p = Packet::padding(0, 0, 10);
        let d = DeliveredPacket::new(p, 25);
        assert_eq!(d.delay(), 0);
    }

    #[test]
    fn delay_saturates_rather_than_underflowing() {
        // Deliveries can never precede arrivals in a correct switch, but the
        // metric must not panic if a buggy scheduler produces one.
        let p = Packet::new(0, 0, 1, 50);
        let d = DeliveredPacket::new(p, 25);
        assert_eq!(d.delay(), 0);
    }
}
