//! Packet representation shared by every switch in the workspace.
//!
//! The simulator works at packet granularity: every packet is a fixed-size
//! cell (one packet per port per time slot, the standard cell-switch model
//! used throughout the load-balanced switching literature and in the paper's
//! evaluation).
//!
//! # Memory layout
//!
//! `Packet` is the unit every queue hop moves, so its size directly scales
//! the simulator's memory bandwidth: a slot at load ρ copies `O(ρ·N)` packets
//! between containers, and the evaluation sweeps millions of slots.  The
//! struct is therefore packed to fit **48 bytes** (six cache-line quarters,
//! three packets per two cache lines) instead of the 80 bytes a naive
//! all-`usize` layout costs:
//!
//! * the four identity counters stay `u64` (ids, slots and sequence numbers
//!   genuinely need the range),
//! * port numbers are `u32` and the routing fields (`intermediate`,
//!   `stripe_size`, `stripe_index`) are `u16` — both bounded by
//!   [`MAX_PORTS`], which every switch constructor enforces in all build
//!   profiles so the narrowing casts can never truncate, and
//! * `is_padding` lives in a flags byte.
//!
//! The narrow fields are private and wrapped by `usize` accessors, so call
//! sites index arrays exactly as before and no on-disk or CSV format can
//! observe the layout (the trace formats serialize their own record structs,
//! never `Packet` itself).  A compile-time assertion pins the 48-byte bound.

use serde::{Deserialize, Serialize};

/// Flag bit: the packet is padding injected by a frame-padding scheme.
const FLAG_PADDING: u8 = 1;

/// Largest switch size the compact routing fields can address.  The
/// `intermediate` port index and the stripe fields are `u16`, and a
/// stripe/frame can span up to `N` packets (UFS frames are exactly `N`), so
/// every value the setters narrow is `≤ n`; bounding `n` by `u16::MAX` keeps
/// them all representable.  (Sprinklers additionally requires a power of two,
/// so its effective ceiling is 32768.)
pub const MAX_PORTS: usize = u16::MAX as usize;

/// Assert — in release builds too — that an `n`-port switch fits the compact
/// [`Packet`] routing fields, so the `as u16` narrowing in the setters can
/// never silently truncate.  Every switch constructor calls this.
#[inline]
pub fn assert_ports_fit(n: usize) {
    assert!(
        n <= MAX_PORTS,
        "switch size {n} exceeds the {MAX_PORTS}-port bound of the compact Packet layout"
    );
}

/// A fixed-size packet (cell) flowing through a switch.
///
/// The identity fields (`input`, `output`, `flow`, `voq_seq`) are assigned at
/// arrival time and never change.  The routing fields (`stripe_size`,
/// `stripe_index`, `intermediate`) are filled in by the switch as the packet
/// is grouped into a stripe and forwarded across the two fabrics; they model
/// the small internal-use header the paper attaches to every packet
/// (log₂log₂N bits for the stripe size, §3.4.3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Globally unique packet identifier (assigned by the traffic generator).
    pub id: u64,
    /// Application-flow identifier.  Packets of the same flow always share the
    /// same `(input, output)` pair; the TCP-hashing baseline additionally uses
    /// this to pick an intermediate port.
    pub flow: u64,
    /// Time slot at which the packet arrived at its input port.
    pub arrival_slot: u64,
    /// Sequence number within the packet's VOQ, i.e. within its
    /// `(input, output)` pair, assigned in arrival order starting from 0.
    ///
    /// Packet order is preserved if and only if, at every output, packets of
    /// the same VOQ depart in increasing `voq_seq` order.  Per-flow order
    /// follows because a flow is a subsequence of its VOQ.
    pub voq_seq: u64,
    /// Input port at which the packet arrived (`0..N`).
    input: u32,
    /// Output port the packet is destined to (`0..N`).
    output: u32,
    /// Intermediate port the packet was (or will be) routed through.
    intermediate: u16,
    /// Size of the stripe (or frame) this packet was grouped into; zero until
    /// the packet is assigned to a stripe.
    stripe_size: u16,
    /// Index of this packet inside its stripe (`0..stripe_size`).
    stripe_index: u16,
    /// Packet flags (currently only [`FLAG_PADDING`]).
    flags: u8,
}

// The whole point of the narrow fields: three packets per two cache lines.
const _: () = assert!(std::mem::size_of::<Packet>() <= 48);

impl Packet {
    /// Create a new data packet with the given identity.
    ///
    /// Routing fields start zeroed; `voq_seq` is expected to be assigned by
    /// the traffic generator or the test harness (it defaults to 0 here).
    pub fn new(input: usize, output: usize, id: u64, arrival_slot: u64) -> Self {
        debug_assert!(input <= u32::MAX as usize && output <= u32::MAX as usize);
        Packet {
            id,
            flow: 0,
            arrival_slot,
            voq_seq: 0,
            // lint: allow(cast) — ports bounded by assert_ports_fit in every build profile
            input: input as u32,
            // lint: allow(cast) — same MAX_PORTS bound as `input` above
            output: output as u32,
            intermediate: 0,
            stripe_size: 0,
            stripe_index: 0,
            flags: 0,
        }
    }

    /// Create a padding (fake) packet for schedulers that pad partial frames.
    pub fn padding(input: usize, output: usize, arrival_slot: u64) -> Self {
        let mut p = Packet::new(input, output, u64::MAX, arrival_slot);
        p.flow = u64::MAX;
        p.voq_seq = u64::MAX;
        p.flags = FLAG_PADDING;
        p
    }

    /// Builder-style helper to set the flow identifier.
    #[must_use]
    pub fn with_flow(mut self, flow: u64) -> Self {
        self.flow = flow;
        self
    }

    /// Builder-style helper to set the VOQ sequence number.
    #[must_use]
    pub fn with_voq_seq(mut self, seq: u64) -> Self {
        self.voq_seq = seq;
        self
    }

    /// Input port at which the packet arrived (`0..N`).
    #[inline]
    pub fn input(&self) -> usize {
        self.input as usize
    }

    /// Output port the packet is destined to (`0..N`).
    #[inline]
    pub fn output(&self) -> usize {
        self.output as usize
    }

    /// Readdress the packet to a different `(input, output)` port pair.
    ///
    /// Single switches never rewrite a packet's identity ports, but the
    /// fabric layer in `sprinklers-sim` does at every hop: a packet crossing
    /// a multi-switch topology is readdressed to node-local ports on entry
    /// to each switch and restored to its global host pair at final
    /// delivery.
    #[inline]
    pub fn set_ports(&mut self, input: usize, output: usize) {
        debug_assert!(input <= u32::MAX as usize && output <= u32::MAX as usize);
        // lint: allow(cast) — ports bounded by assert_ports_fit in every build profile
        self.input = input as u32;
        // lint: allow(cast) — same MAX_PORTS bound as `input` above
        self.output = output as u32;
    }

    /// Intermediate port the packet was (or will be) routed through.
    /// Meaningful once the packet has crossed the first fabric.
    #[inline]
    pub fn intermediate(&self) -> usize {
        self.intermediate as usize
    }

    /// Stamp the intermediate port the packet will be routed through.
    #[inline]
    pub fn set_intermediate(&mut self, intermediate: usize) {
        debug_assert!(intermediate <= u16::MAX as usize);
        // lint: allow(cast) — intermediate < n ≤ MAX_PORTS by assert_ports_fit
        self.intermediate = intermediate as u16;
    }

    /// Size of the stripe (or frame) this packet was grouped into.
    /// Zero until the packet is assigned to a stripe.
    #[inline]
    pub fn stripe_size(&self) -> usize {
        self.stripe_size as usize
    }

    /// Stamp the stripe (or frame) size.
    #[inline]
    pub fn set_stripe_size(&mut self, stripe_size: usize) {
        debug_assert!(stripe_size <= u16::MAX as usize);
        // lint: allow(cast) — a stripe spans at most n ≤ MAX_PORTS packets
        self.stripe_size = stripe_size as u16;
    }

    /// Index of this packet inside its stripe (`0..stripe_size`).
    #[inline]
    pub fn stripe_index(&self) -> usize {
        self.stripe_index as usize
    }

    /// Stamp the packet's index inside its stripe.
    #[inline]
    pub fn set_stripe_index(&mut self, stripe_index: usize) {
        debug_assert!(stripe_index <= u16::MAX as usize);
        // lint: allow(cast) — stripe_index < stripe_size ≤ MAX_PORTS
        self.stripe_index = stripe_index as u16;
    }

    /// True for padding packets injected by schedulers that pad partial frames
    /// (the Padded Frames baseline).  Padding packets occupy switch capacity
    /// but are discarded at the output and never counted in delay or
    /// reordering statistics.
    #[inline]
    pub fn is_padding(&self) -> bool {
        self.flags & FLAG_PADDING != 0
    }

    /// The VOQ this packet belongs to, as an `(input, output)` pair.
    #[inline]
    pub fn voq(&self) -> (usize, usize) {
        (self.input(), self.output())
    }
}

/// A packet together with the time slot at which it reached its output port.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliveredPacket {
    /// The delivered packet.
    pub packet: Packet,
    /// Slot at which the packet crossed the second fabric into its output.
    pub departure_slot: u64,
}

impl DeliveredPacket {
    /// Create a delivery record.
    pub fn new(packet: Packet, departure_slot: u64) -> Self {
        DeliveredPacket {
            packet,
            departure_slot,
        }
    }

    /// End-to-end delay of the packet in time slots (departure − arrival).
    ///
    /// Padding packets report a delay of 0.
    pub fn delay(&self) -> u64 {
        if self.packet.is_padding() {
            return 0;
        }
        self.departure_slot.saturating_sub(self.packet.arrival_slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_packet_has_expected_identity() {
        let p = Packet::new(3, 7, 42, 100);
        assert_eq!(p.input(), 3);
        assert_eq!(p.output(), 7);
        assert_eq!(p.id, 42);
        assert_eq!(p.arrival_slot, 100);
        assert_eq!(p.voq(), (3, 7));
        assert!(!p.is_padding());
        assert_eq!(p.stripe_size(), 0);
    }

    #[test]
    fn builder_helpers_set_fields() {
        let p = Packet::new(0, 1, 0, 0).with_flow(9).with_voq_seq(5);
        assert_eq!(p.flow, 9);
        assert_eq!(p.voq_seq, 5);
    }

    #[test]
    fn routing_setters_round_trip() {
        let mut p = Packet::new(0, 1, 0, 0);
        p.set_intermediate(1234);
        p.set_stripe_size(64);
        p.set_stripe_index(63);
        assert_eq!(p.intermediate(), 1234);
        assert_eq!(p.stripe_size(), 64);
        assert_eq!(p.stripe_index(), 63);
    }

    #[test]
    fn set_ports_rewrites_the_voq_pair() {
        let mut p = Packet::new(3, 7, 42, 100).with_voq_seq(5);
        p.set_ports(1, 2);
        assert_eq!(p.voq(), (1, 2));
        // Only the addressing changes; identity counters are untouched.
        assert_eq!(p.id, 42);
        assert_eq!(p.arrival_slot, 100);
        assert_eq!(p.voq_seq, 5);
    }

    #[test]
    fn packet_fits_in_48_bytes() {
        // The layout contract the fabric hot path is sized around.
        assert!(std::mem::size_of::<Packet>() <= 48);
    }

    #[test]
    fn port_bound_guard_accepts_the_ceiling() {
        assert_ports_fit(MAX_PORTS);
    }

    #[test]
    #[should_panic(expected = "exceeds the 65535-port bound")]
    fn port_bound_guard_rejects_oversized_switches() {
        assert_ports_fit(MAX_PORTS + 1);
    }

    #[test]
    fn padding_packet_is_marked() {
        let p = Packet::padding(2, 4, 10);
        assert!(p.is_padding());
        assert_eq!(p.voq(), (2, 4));
    }

    #[test]
    fn delay_is_departure_minus_arrival() {
        let p = Packet::new(0, 0, 1, 10);
        let d = DeliveredPacket::new(p, 25);
        assert_eq!(d.delay(), 15);
    }

    #[test]
    fn delay_of_padding_packet_is_zero() {
        let p = Packet::padding(0, 0, 10);
        let d = DeliveredPacket::new(p, 25);
        assert_eq!(d.delay(), 0);
    }

    #[test]
    fn delay_saturates_rather_than_underflowing() {
        // Deliveries can never precede arrivals in a correct switch, but the
        // metric must not panic if a buggy scheduler produces one.
        let p = Packet::new(0, 0, 1, 50);
        let d = DeliveredPacket::new(p, 25);
        assert_eq!(d.delay(), 0);
    }
}
