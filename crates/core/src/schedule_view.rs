//! Textual rendering of scheduler occupancy (the paper's Fig. 3/4 view).
//!
//! The paper explains the LSF policy with a *schedule grid*: one row per
//! intermediate port, one column per stripe-size class, with stripes drawn as
//! vertical bars.  This module renders the live occupancy of an input port's
//! scheduler (or of an intermediate port, which uses the same shape of data)
//! as a small text table — handy in examples, debugging sessions and test
//! failure messages.

use crate::lsf::{levels, RowScanLsf};

/// A snapshot of per-row, per-level queue occupancy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccupancyGrid {
    n: usize,
    levels: usize,
    /// `counts[row][level]` = queued packets at that grid cell.
    counts: Vec<Vec<usize>>,
}

impl OccupancyGrid {
    /// Build an empty grid for an `n`-port switch.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two());
        let levels = levels(n);
        OccupancyGrid {
            n,
            levels,
            counts: vec![vec![0; levels]; n],
        }
    }

    /// Snapshot the occupancy of a row-scan LSF scheduler.
    pub fn from_row_scan(scheduler: &RowScanLsf) -> Self {
        let n = scheduler.n();
        let mut grid = Self::new(n);
        for row in 0..n {
            for level in 0..grid.levels {
                grid.counts[row][level] = scheduler.queue_len(row, level);
            }
        }
        grid
    }

    /// Set one cell (used when building snapshots from other sources, e.g.
    /// an intermediate port's per-output queues).
    pub fn set(&mut self, row: usize, level: usize, count: usize) {
        self.counts[row][level] = count;
    }

    /// Occupancy of one cell.
    pub fn get(&self, row: usize, level: usize) -> usize {
        self.counts[row][level]
    }

    /// Total queued packets.
    pub fn total(&self) -> usize {
        self.counts.iter().flatten().sum()
    }

    /// Total queued packets destined to one row (intermediate port).
    pub fn row_total(&self, row: usize) -> usize {
        self.counts[row].iter().sum()
    }

    /// Render the grid as a text table: rows are intermediate ports, columns
    /// are stripe sizes from 1 up to N (left to right), mirroring Fig. 4 of
    /// the paper.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("        ");
        for level in 0..self.levels {
            out.push_str(&format!("{:>6}", 1usize << level));
        }
        out.push_str("   total\n");
        for row in 0..self.n {
            out.push_str(&format!("port {row:>3}"));
            for level in 0..self.levels {
                let c = self.counts[row][level];
                if c == 0 {
                    out.push_str("     .");
                } else {
                    out.push_str(&format!("{c:>6}"));
                }
            }
            out.push_str(&format!("{:>8}\n", self.row_total(row)));
        }
        out.push_str(&format!("total queued: {}\n", self.total()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dyadic::DyadicInterval;
    use crate::lsf::StripeScheduler;
    use crate::packet::Packet;
    use crate::stripe::Stripe;

    fn mk_stripe(start: usize, size: usize) -> Stripe {
        let interval = DyadicInterval::new(start, size);
        let packets = (0..size).map(|k| Packet::new(0, 1, k as u64, 0)).collect();
        Stripe::assemble(interval, 0, 1, 0, packets)
    }

    #[test]
    fn snapshot_reflects_scheduler_contents() {
        let mut s = RowScanLsf::new(8);
        s.insert(mk_stripe(0, 4));
        s.insert(mk_stripe(6, 2));
        let grid = OccupancyGrid::from_row_scan(&s);
        assert_eq!(grid.total(), 6);
        assert_eq!(grid.get(0, 2), 1);
        assert_eq!(grid.get(3, 2), 1);
        assert_eq!(grid.get(6, 1), 1);
        assert_eq!(grid.get(6, 0), 0);
        assert_eq!(grid.row_total(6), 1);
        assert_eq!(grid.row_total(4), 0);
    }

    #[test]
    fn render_contains_headers_and_counts() {
        let mut s = RowScanLsf::new(4);
        s.insert(mk_stripe(0, 4));
        let grid = OccupancyGrid::from_row_scan(&s);
        let text = grid.render();
        assert!(text.contains("port   0"));
        assert!(text.contains("total queued: 4"));
        // Column headers 1, 2, 4.
        assert!(text.contains('1') && text.contains('2') && text.contains('4'));
        assert_eq!(text.lines().count(), 4 + 2);
    }

    #[test]
    fn empty_grid_renders_dots() {
        let grid = OccupancyGrid::new(4);
        let text = grid.render();
        assert!(text.contains('.'));
        assert!(text.contains("total queued: 0"));
    }

    #[test]
    fn manual_cells_can_be_set() {
        let mut grid = OccupancyGrid::new(8);
        grid.set(5, 2, 7);
        assert_eq!(grid.get(5, 2), 7);
        assert_eq!(grid.total(), 7);
    }
}
