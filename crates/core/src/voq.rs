//! Virtual Output Queues (VOQs) with stripe assembly and adaptive resizing.
//!
//! Each input port keeps one VOQ per output.  A VOQ accumulates arriving
//! packets in a *ready queue* and releases them in full stripes of its current
//! stripe size (§3.2).  When the sizing mode is adaptive, the VOQ measures its
//! own arrival rate, decides on stripe-size changes with hysteresis, and
//! performs the *clearance phase* of §5: a new stripe size only takes effect
//! once every packet striped under the old size has left the switch, which is
//! what keeps resizing from reintroducing reordering.

use crate::config::AdaptiveSizing;
use crate::dyadic::DyadicInterval;
use crate::packet::Packet;
use crate::rate_estimator::RateEstimator;
use crate::sizing::SizeDecider;
use crate::stripe::Stripe;
use std::collections::VecDeque;

/// Sizing behaviour of a single VOQ.
#[derive(Debug, Clone)]
enum VoqSizing {
    /// The stripe size is fixed for the lifetime of the switch (set from a
    /// traffic matrix or an explicit constant).
    Fixed,
    /// The stripe size follows the measured arrival rate.
    Adaptive {
        estimator: RateEstimator,
        decider: SizeDecider,
        /// Slots between sizing decisions (the measurement window).
        window: u64,
        /// Slot at which the next sizing decision is due.
        next_check: u64,
    },
}

/// A single Virtual Output Queue at an input port.
#[derive(Debug, Clone)]
pub struct Voq {
    input: usize,
    output: usize,
    n: usize,
    /// Primary intermediate port assigned by the OLS; the stripe interval is
    /// always the dyadic interval of the current size containing this port.
    primary_port: usize,
    current_size: usize,
    interval: DyadicInterval,
    /// Packets waiting to fill the next stripe, in arrival order.
    ready: VecDeque<Packet>,
    next_stripe_seq: u64,
    /// Packets that have been released in stripes but have not yet been
    /// reported as delivered at the output.
    in_flight: u64,
    /// A stripe-size change waiting for the clearance phase to finish.
    pending_size: Option<usize>,
    sizing: VoqSizing,
    /// Cumulative number of committed stripe-size changes (for telemetry).
    resizes: u64,
}

impl Voq {
    /// Create a VOQ with a fixed stripe size.
    pub fn fixed(input: usize, output: usize, n: usize, primary_port: usize, size: usize) -> Self {
        let size = size.clamp(1, n);
        assert!(size.is_power_of_two());
        Voq {
            input,
            output,
            n,
            primary_port,
            current_size: size,
            interval: DyadicInterval::containing(primary_port, size),
            ready: VecDeque::new(),
            next_stripe_seq: 0,
            in_flight: 0,
            pending_size: None,
            sizing: VoqSizing::Fixed,
            resizes: 0,
        }
    }

    /// Create a VOQ whose stripe size adapts to its measured arrival rate,
    /// following the given [`AdaptiveSizing`] parameters.
    pub fn adaptive(
        input: usize,
        output: usize,
        n: usize,
        primary_port: usize,
        params: &AdaptiveSizing,
    ) -> Self {
        let initial_size = params.initial_size.clamp(1, n);
        assert!(initial_size.is_power_of_two());
        Voq {
            input,
            output,
            n,
            primary_port,
            current_size: initial_size,
            interval: DyadicInterval::containing(primary_port, initial_size),
            ready: VecDeque::new(),
            next_stripe_seq: 0,
            in_flight: 0,
            pending_size: None,
            sizing: VoqSizing::Adaptive {
                estimator: RateEstimator::new(params.window, params.gamma),
                decider: SizeDecider::new(n, initial_size, params.patience),
                window: params.window,
                next_check: params.window,
            },
            resizes: 0,
        }
    }

    /// The VOQ's primary intermediate port.
    pub fn primary_port(&self) -> usize {
        self.primary_port
    }

    /// The VOQ's current stripe size.
    pub fn stripe_size(&self) -> usize {
        self.current_size
    }

    /// The VOQ's current stripe interval.
    pub fn interval(&self) -> DyadicInterval {
        self.interval
    }

    /// Number of packets waiting in the ready queue (not yet in a stripe).
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Number of packets released in stripes and not yet delivered.
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Cumulative number of committed stripe-size changes.
    pub fn resizes(&self) -> u64 {
        self.resizes
    }

    /// Is a stripe-size change waiting for the clearance phase?
    pub fn resize_pending(&self) -> bool {
        self.pending_size.is_some()
    }

    /// Enqueue an arriving packet and return any stripes that become complete.
    pub fn push(&mut self, packet: Packet, now: u64) -> Vec<Stripe> {
        debug_assert_eq!(packet.input(), self.input);
        debug_assert_eq!(packet.output(), self.output);
        if let VoqSizing::Adaptive { estimator, .. } = &mut self.sizing {
            estimator.record_arrival(now);
        }
        self.ready.push_back(packet);
        self.maybe_resize(now);
        self.collect_stripes()
    }

    /// Advance the adaptive sizing clock without an arrival (call once per
    /// measurement window or per slot; it is cheap when no window elapsed).
    pub fn on_slot(&mut self, now: u64) -> Vec<Stripe> {
        self.maybe_resize(now);
        self.collect_stripes()
    }

    /// Form any stripes the ready queue can already fill, without advancing
    /// any clock.  Only an immediately-committed [`Voq::request_resize`] can
    /// leave complete stripes sitting in the ready queue, so callers that
    /// resize out of band (reconfiguration) use this to release them at the
    /// resize site — which is what lets the switch's per-slot maintenance
    /// pass be skipped entirely for non-adaptive sizing.
    pub fn release_ready(&mut self) -> Vec<Stripe> {
        self.collect_stripes()
    }

    /// Report that one of this VOQ's packets reached its output port.
    /// Returns any stripes released because a pending resize could commit.
    pub fn packet_delivered(&mut self) -> Vec<Stripe> {
        debug_assert!(
            self.in_flight > 0,
            "delivered more packets than were in flight"
        );
        self.in_flight = self.in_flight.saturating_sub(1);
        if self.in_flight == 0 && self.pending_size.is_some() {
            self.commit_resize();
            return self.collect_stripes();
        }
        Vec::new()
    }

    /// Request a stripe-size change (used by the matrix-driven and fixed
    /// sizing modes when reconfiguring, and internally by the adaptive mode).
    ///
    /// The change is applied immediately if nothing is in flight, otherwise it
    /// is deferred to the end of the clearance phase.
    pub fn request_resize(&mut self, new_size: usize) {
        let new_size = new_size.clamp(1, self.n);
        assert!(new_size.is_power_of_two());
        if new_size == self.current_size {
            self.pending_size = None;
            return;
        }
        if self.in_flight == 0 {
            self.pending_size = Some(new_size);
            self.commit_resize();
        } else {
            self.pending_size = Some(new_size);
        }
    }

    fn maybe_resize(&mut self, now: u64) {
        let mut requested = None;
        if let VoqSizing::Adaptive {
            estimator,
            decider,
            window,
            next_check,
        } = &mut self.sizing
        {
            if now >= *next_check {
                let rate = estimator.rate_at(now);
                if let Some(size) = decider.observe(rate) {
                    requested = Some(size);
                }
                *next_check = now - (now % *window) + *window;
            }
        }
        if let Some(size) = requested {
            self.request_resize(size);
        }
    }

    fn commit_resize(&mut self) {
        if let Some(size) = self.pending_size.take() {
            debug_assert_eq!(self.in_flight, 0);
            self.current_size = size;
            self.interval = DyadicInterval::containing(self.primary_port, size);
            self.resizes += 1;
        }
    }

    /// Form as many complete stripes as possible from the ready queue.
    ///
    /// While a resize is pending (clearance phase), no new stripes are formed:
    /// arrivals keep accumulating so that old-size and new-size stripes never
    /// coexist in the switch.
    fn collect_stripes(&mut self) -> Vec<Stripe> {
        let mut out = Vec::new();
        if self.pending_size.is_some() {
            return out;
        }
        while self.ready.len() >= self.current_size {
            let packets: Vec<Packet> = self.ready.drain(..self.current_size).collect();
            let stripe = Stripe::assemble(
                self.interval,
                self.input,
                self.output,
                self.next_stripe_seq,
                packets,
            );
            self.next_stripe_seq += 1;
            self.in_flight += stripe.size() as u64;
            out.push(stripe);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(input: usize, output: usize, seq: u64) -> Packet {
        Packet::new(input, output, seq, 0).with_voq_seq(seq)
    }

    #[test]
    fn fixed_voq_releases_full_stripes_only() {
        let mut v = Voq::fixed(0, 1, 8, 5, 4);
        assert_eq!(v.interval(), DyadicInterval::new(4, 4));
        for i in 0..3 {
            assert!(v.push(pkt(0, 1, i), i).is_empty());
        }
        let stripes = v.push(pkt(0, 1, 3), 3);
        assert_eq!(stripes.len(), 1);
        assert_eq!(stripes[0].size(), 4);
        assert_eq!(stripes[0].interval, DyadicInterval::new(4, 4));
        assert_eq!(v.ready_len(), 0);
        assert_eq!(v.in_flight(), 4);
        // Packets are stamped in arrival order.
        for (i, p) in stripes[0].packets.iter().enumerate() {
            assert_eq!(p.voq_seq, i as u64);
            assert_eq!(p.stripe_index(), i);
        }
    }

    #[test]
    fn unit_stripe_voq_releases_every_packet() {
        let mut v = Voq::fixed(0, 1, 8, 3, 1);
        for i in 0..5 {
            let s = v.push(pkt(0, 1, i), i);
            assert_eq!(s.len(), 1);
            assert_eq!(s[0].size(), 1);
            assert_eq!(s[0].interval, DyadicInterval::new(3, 1));
        }
    }

    #[test]
    fn resize_with_nothing_in_flight_is_immediate() {
        let mut v = Voq::fixed(0, 1, 8, 5, 4);
        v.request_resize(2);
        assert_eq!(v.stripe_size(), 2);
        assert_eq!(v.interval(), DyadicInterval::new(4, 2));
        assert_eq!(v.resizes(), 1);
        assert!(!v.resize_pending());
    }

    #[test]
    fn resize_waits_for_clearance() {
        let mut v = Voq::fixed(0, 1, 8, 1, 2);
        // Fill one stripe → 2 packets in flight.
        v.push(pkt(0, 1, 0), 0);
        let s = v.push(pkt(0, 1, 1), 1);
        assert_eq!(s.len(), 1);
        assert_eq!(v.in_flight(), 2);

        v.request_resize(4);
        assert!(v.resize_pending());
        assert_eq!(
            v.stripe_size(),
            2,
            "resize must not apply while packets are in flight"
        );

        // During clearance, arrivals accumulate and no stripes are formed.
        for i in 2..8 {
            assert!(v.push(pkt(0, 1, i), i).is_empty());
        }
        assert_eq!(v.ready_len(), 6);

        // Deliver the two in-flight packets: resize commits and the backlog is
        // released with the new size.
        assert!(v.packet_delivered().is_empty());
        let released = v.packet_delivered();
        assert_eq!(v.stripe_size(), 4);
        assert_eq!(released.len(), 1, "6 ready packets form one stripe of 4");
        assert_eq!(released[0].size(), 4);
        assert_eq!(v.ready_len(), 2);
        assert!(!v.resize_pending());
        assert_eq!(v.resizes(), 1);
    }

    #[test]
    fn resize_to_same_size_clears_pending() {
        let mut v = Voq::fixed(0, 1, 8, 1, 2);
        v.push(pkt(0, 1, 0), 0);
        v.push(pkt(0, 1, 1), 1);
        v.request_resize(4);
        assert!(v.resize_pending());
        v.request_resize(2);
        assert!(!v.resize_pending());
    }

    #[test]
    fn shrinking_releases_multiple_stripes() {
        let mut v = Voq::fixed(0, 1, 8, 0, 8);
        for i in 0..6 {
            assert!(v.push(pkt(0, 1, i), i).is_empty());
        }
        v.request_resize(2);
        // With nothing in flight the resize is immediate and the 6 ready
        // packets become 3 stripes of 2.
        let released = v.on_slot(6);
        assert_eq!(v.stripe_size(), 2);
        assert_eq!(released.len(), 3);
        assert!(released.iter().all(|s| s.size() == 2));
        // Stripe sequence numbers increase.
        assert!(released
            .windows(2)
            .all(|w| w[0].stripe_seq < w[1].stripe_seq));
    }

    #[test]
    fn adaptive_voq_grows_under_load() {
        let n = 16;
        // Window of 64 slots, react after 1 confirming window.
        let mut v = Voq::adaptive(
            0,
            1,
            n,
            7,
            &AdaptiveSizing {
                window: 64,
                gamma: 1.0,
                patience: 0,
                initial_size: 1,
            },
        );
        assert_eq!(v.stripe_size(), 1);
        let mut delivered_backlog = 0u64;
        // Offer one packet per slot (rate 1.0) for many windows, delivering
        // everything promptly so clearance never blocks.
        for slot in 0..1024u64 {
            let stripes = v.push(pkt(0, 1, slot), slot);
            for s in stripes {
                delivered_backlog += s.size() as u64;
            }
            // Deliver in-flight packets immediately.
            while delivered_backlog > 0 {
                v.packet_delivered();
                delivered_backlog -= 1;
            }
        }
        assert_eq!(
            v.stripe_size(),
            n,
            "a rate-1 VOQ must converge to a full-span stripe (F(1) = N)"
        );
        assert!(v.resizes() >= 1);
    }

    #[test]
    fn adaptive_voq_shrinks_when_load_disappears() {
        let n = 16;
        let mut v = Voq::adaptive(
            0,
            1,
            n,
            7,
            &AdaptiveSizing {
                window: 64,
                gamma: 1.0,
                patience: 0,
                initial_size: 16,
            },
        );
        // No arrivals at all: after a few windows the decider should shrink
        // the stripe to 1 (rate estimate 0).
        let mut released = Vec::new();
        for slot in 0..1024u64 {
            released.extend(v.on_slot(slot));
        }
        assert!(released.is_empty());
        assert_eq!(v.stripe_size(), 1);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_resize_is_rejected() {
        let mut v = Voq::fixed(0, 1, 8, 0, 2);
        v.request_resize(3);
    }
}
