//! Dyadic intervals of intermediate ports.
//!
//! A *dyadic interval* is obtained by splitting the whole port range `[0, N)`
//! into `2^k` equal parts: it has a power-of-two size and its start is a
//! multiple of its size.  The paper writes them 1-indexed as `(2^k·m, 2^k·(m+1)]`;
//! this crate uses the equivalent 0-indexed half-open form `[2^k·m, 2^k·(m+1))`.
//!
//! The crucial structural property (§3.1) is that two dyadic intervals either
//! *nest* (one contains the other — "bear hug") or are *disjoint*.  This is what
//! allows the Largest-Stripe-First scheduler to serve every stripe in one
//! contiguous burst without ever wasting service slots on partial overlaps.

use serde::{Deserialize, Serialize};

/// A dyadic interval `[start, start + size)` of intermediate-port indices.
///
/// Invariants (enforced by the constructors):
/// * `size` is a power of two and at least 1,
/// * `start` is a multiple of `size`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DyadicInterval {
    start: usize,
    size: usize,
}

impl DyadicInterval {
    /// Construct a dyadic interval from its start and size.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not a power of two or `start` is not aligned to
    /// `size`.  Use [`DyadicInterval::try_new`] for a fallible version.
    pub fn new(start: usize, size: usize) -> Self {
        Self::try_new(start, size).expect("invalid dyadic interval")
    }

    /// Construct a dyadic interval, returning `None` if the arguments do not
    /// describe a valid dyadic interval.
    pub fn try_new(start: usize, size: usize) -> Option<Self> {
        if size == 0 || !size.is_power_of_two() {
            return None;
        }
        if !start.is_multiple_of(size) {
            return None;
        }
        Some(DyadicInterval { start, size })
    }

    /// The unique dyadic interval of size `size` containing `port`.
    ///
    /// This is how a VOQ's stripe interval is derived from its primary
    /// intermediate port (§3.3.1): the VOQ with primary port `σ(i)` and stripe
    /// size `n` is assigned the unique size-`n` dyadic interval containing
    /// `σ(i)`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not a power of two.
    pub fn containing(port: usize, size: usize) -> Self {
        assert!(size.is_power_of_two(), "size {size} must be a power of two");
        DyadicInterval {
            start: (port / size) * size,
            size,
        }
    }

    /// First port of the interval (inclusive).
    pub fn start(&self) -> usize {
        self.start
    }

    /// Number of ports in the interval.
    pub fn size(&self) -> usize {
        self.size
    }

    /// One past the last port of the interval.
    pub fn end(&self) -> usize {
        self.start + self.size
    }

    /// The level of the interval: `log₂(size)`.
    pub fn level(&self) -> usize {
        self.size.trailing_zeros() as usize
    }

    /// Does the interval contain the given port?
    pub fn contains(&self, port: usize) -> bool {
        port >= self.start && port < self.end()
    }

    /// Does this interval entirely contain `other`?
    pub fn contains_interval(&self, other: &DyadicInterval) -> bool {
        self.start <= other.start && other.end() <= self.end()
    }

    /// Do the two intervals share at least one port?
    pub fn overlaps(&self, other: &DyadicInterval) -> bool {
        self.start < other.end() && other.start < self.end()
    }

    /// The parent dyadic interval (twice the size), or `None` if growing the
    /// interval would exceed `n` ports.
    pub fn parent(&self, n: usize) -> Option<Self> {
        let size = self.size * 2;
        if size > n {
            return None;
        }
        Some(DyadicInterval::containing(self.start, size))
    }

    /// The two children dyadic intervals (half the size), or `None` if the
    /// interval is a single port.
    pub fn children(&self) -> Option<(Self, Self)> {
        if self.size == 1 {
            return None;
        }
        let half = self.size / 2;
        Some((
            DyadicInterval {
                start: self.start,
                size: half,
            },
            DyadicInterval {
                start: self.start + half,
                size: half,
            },
        ))
    }

    /// Iterate over the ports in the interval.
    pub fn ports(&self) -> impl Iterator<Item = usize> + '_ {
        self.start..self.end()
    }

    /// The offset of `port` within the interval, or `None` if it is outside.
    pub fn offset_of(&self, port: usize) -> Option<usize> {
        if self.contains(port) {
            Some(port - self.start)
        } else {
            None
        }
    }

    /// Index of this interval among the dyadic intervals of the same size:
    /// `start / size`.
    pub fn index(&self) -> usize {
        self.start / self.size
    }

    /// Enumerate every dyadic interval of an `n`-port switch, smallest first.
    ///
    /// For `n` a power of two there are exactly `2n − 1` of them — this is the
    /// count of distinct FIFO queues the simplified input-port LSF
    /// implementation needs (§3.4.2).
    pub fn enumerate_all(n: usize) -> Vec<DyadicInterval> {
        assert!(
            n.is_power_of_two(),
            "switch size {n} must be a power of two"
        );
        let mut out = Vec::with_capacity(2 * n - 1);
        let mut size = 1;
        while size <= n {
            let mut start = 0;
            while start < n {
                out.push(DyadicInterval { start, size });
                start += size;
            }
            size *= 2;
        }
        out
    }
}

impl std::fmt::Display for DyadicInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {})", self.start, self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn try_new_rejects_bad_arguments() {
        assert!(DyadicInterval::try_new(0, 0).is_none());
        assert!(DyadicInterval::try_new(0, 3).is_none());
        assert!(DyadicInterval::try_new(2, 4).is_none());
        assert!(DyadicInterval::try_new(4, 4).is_some());
        assert!(DyadicInterval::try_new(0, 1).is_some());
    }

    #[test]
    #[should_panic]
    fn new_panics_on_misaligned_start() {
        let _ = DyadicInterval::new(3, 2);
    }

    #[test]
    fn containing_matches_paper_example() {
        // Paper, Fig. 2: VOQ 7 has primary intermediate port 1 (1-indexed) and
        // stripe size 4, so its interval is (0, 4].  0-indexed: port 0, size 4
        // → [0, 4).
        let iv = DyadicInterval::containing(0, 4);
        assert_eq!(iv.start(), 0);
        assert_eq!(iv.end(), 4);

        // The size-4 interval containing port 9 (0-indexed) is [8, 12).
        let iv = DyadicInterval::containing(9, 4);
        assert_eq!(iv.start(), 8);
        assert_eq!(iv.size(), 4);
        assert!(iv.contains(9));
        assert!(!iv.contains(12));
    }

    #[test]
    fn level_and_index_are_consistent() {
        let iv = DyadicInterval::new(12, 4);
        assert_eq!(iv.level(), 2);
        assert_eq!(iv.index(), 3);
        let iv = DyadicInterval::new(0, 1);
        assert_eq!(iv.level(), 0);
        assert_eq!(iv.index(), 0);
    }

    #[test]
    fn parent_and_children_roundtrip() {
        let iv = DyadicInterval::new(8, 4);
        let parent = iv.parent(16).unwrap();
        assert_eq!(parent, DyadicInterval::new(8, 8));
        let (lo, hi) = parent.children().unwrap();
        assert_eq!(lo, DyadicInterval::new(8, 4));
        assert_eq!(hi, DyadicInterval::new(12, 4));
        assert!(parent.contains_interval(&iv));

        // The whole interval has no parent within n.
        assert!(DyadicInterval::new(0, 16).parent(16).is_none());
        // A single port has no children.
        assert!(DyadicInterval::new(5, 1).children().is_none());
    }

    #[test]
    fn enumerate_all_counts_2n_minus_1() {
        for n in [1usize, 2, 4, 8, 16, 64] {
            let all = DyadicInterval::enumerate_all(n);
            assert_eq!(all.len(), 2 * n - 1, "n = {n}");
            // All are valid and within range.
            for iv in &all {
                assert!(iv.end() <= n);
                assert!(DyadicInterval::try_new(iv.start(), iv.size()).is_some());
            }
        }
    }

    #[test]
    fn offset_of_ports() {
        let iv = DyadicInterval::new(8, 4);
        assert_eq!(iv.offset_of(8), Some(0));
        assert_eq!(iv.offset_of(11), Some(3));
        assert_eq!(iv.offset_of(12), None);
        assert_eq!(iv.offset_of(0), None);
    }

    #[test]
    fn display_is_half_open() {
        assert_eq!(DyadicInterval::new(8, 4).to_string(), "[8, 12)");
    }

    #[test]
    fn ports_iterates_the_whole_interval() {
        let iv = DyadicInterval::new(4, 4);
        let ports: Vec<usize> = iv.ports().collect();
        assert_eq!(ports, vec![4, 5, 6, 7]);
    }

    proptest! {
        /// Two dyadic intervals either nest or are disjoint ("bear hug or
        /// don't touch", §3.1).
        #[test]
        fn dyadic_intervals_nest_or_are_disjoint(
            a_port in 0usize..1024,
            a_level in 0usize..10,
            b_port in 0usize..1024,
            b_level in 0usize..10,
        ) {
            let a = DyadicInterval::containing(a_port, 1 << a_level);
            let b = DyadicInterval::containing(b_port, 1 << b_level);
            if a.overlaps(&b) {
                prop_assert!(a.contains_interval(&b) || b.contains_interval(&a));
            } else {
                prop_assert!(!a.contains_interval(&b) || a == b);
                prop_assert!(!b.contains_interval(&a) || a == b);
            }
        }

        /// `containing` always produces an interval that contains the port and
        /// has exactly the requested size.
        #[test]
        fn containing_contains_the_port(port in 0usize..4096, level in 0usize..12) {
            let size = 1usize << level;
            let iv = DyadicInterval::containing(port, size);
            prop_assert!(iv.contains(port));
            prop_assert_eq!(iv.size(), size);
            prop_assert_eq!(iv.start() % size, 0);
        }

        /// The parent of an interval contains it; children partition it.
        #[test]
        fn parent_contains_children_partition(port in 0usize..1024, level in 1usize..10) {
            let iv = DyadicInterval::containing(port, 1 << level);
            let (lo, hi) = iv.children().unwrap();
            prop_assert!(iv.contains_interval(&lo));
            prop_assert!(iv.contains_interval(&hi));
            prop_assert_eq!(lo.size() + hi.size(), iv.size());
            prop_assert_eq!(lo.end(), hi.start());
            prop_assert!(!lo.overlaps(&hi));
        }

        /// Every port of an n-port switch appears in exactly log2(n)+1 of the
        /// 2n-1 dyadic intervals (one per level).
        #[test]
        fn each_port_is_in_one_interval_per_level(n_exp in 1usize..7, port_seed in 0usize..10_000) {
            let n = 1usize << n_exp;
            let port = port_seed % n;
            let all = DyadicInterval::enumerate_all(n);
            let count = all.iter().filter(|iv| iv.contains(port)).count();
            prop_assert_eq!(count, n_exp + 1);
        }
    }
}
