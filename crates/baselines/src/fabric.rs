//! The deterministic periodic connection patterns shared by every
//! load-balanced switch in this workspace (Fig. 1 of the paper).
//!
//! * First fabric: at slot `t`, input `i` is connected to intermediate port
//!   `(i + t) mod N` (the "increasing" sequence).
//! * Second fabric: at slot `t`, intermediate port `ℓ` is connected to output
//!   `(ℓ − t) mod N` (the "decreasing" sequence), so output `j` receives from
//!   intermediate port `(j + t) mod N`.

/// Intermediate port connected to `input` at slot `t` by the first fabric.
pub fn first_fabric(input: usize, slot: u64, n: usize) -> usize {
    first_fabric_at(input, (slot % n as u64) as usize, n)
}

/// [`first_fabric`] with the fabric phase `t == slot mod n` already reduced.
///
/// The batched `step_batch` paths rotate `t` across a batch instead of
/// recomputing the `u64` modulo once per port per slot.
// lint: hot-path
#[inline]
pub fn first_fabric_at(input: usize, t: usize, n: usize) -> usize {
    debug_assert!(t < n);
    let l = input + t;
    if l >= n {
        l - n
    } else {
        l
    }
}

/// Output port connected to `intermediate` at slot `t` by the second fabric.
pub fn second_fabric_output(intermediate: usize, slot: u64, n: usize) -> usize {
    second_fabric_output_at(intermediate, (slot % n as u64) as usize, n)
}

/// [`second_fabric_output`] with the phase `t == slot mod n` already reduced.
// lint: hot-path
#[inline]
pub fn second_fabric_output_at(intermediate: usize, t: usize, n: usize) -> usize {
    debug_assert!(t < n);
    let j = intermediate + n - t;
    if j >= n {
        j - n
    } else {
        j
    }
}

/// Intermediate port from which `output` receives at slot `t`.
pub fn output_sweep_port(output: usize, slot: u64, n: usize) -> usize {
    (output + (slot % n as u64) as usize) % n
}

/// The slot offset within a frame at which `input` is connected to
/// intermediate port 0; frame-aligned schemes (UFS, PF) start frame
/// transmission only at slots `t` with `t mod N == frame_start_offset`.
pub fn frame_start_offset(input: usize, n: usize) -> u64 {
    ((n - input % n) % n) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabrics_are_permutations_every_slot() {
        let n = 8;
        for slot in 0..32u64 {
            let mut seen_mid = vec![false; n];
            let mut seen_out = vec![false; n];
            for i in 0..n {
                let l = first_fabric(i, slot, n);
                assert!(!seen_mid[l]);
                seen_mid[l] = true;
                let j = second_fabric_output(i, slot, n);
                assert!(!seen_out[j]);
                seen_out[j] = true;
            }
        }
    }

    #[test]
    fn phase_variants_agree_with_the_slot_variants() {
        for n in [2usize, 8, 16] {
            for slot in 0..3 * n as u64 {
                let t = (slot % n as u64) as usize;
                for p in 0..n {
                    assert_eq!(first_fabric_at(p, t, n), first_fabric(p, slot, n));
                    assert_eq!(
                        second_fabric_output_at(p, t, n),
                        second_fabric_output(p, slot, n)
                    );
                }
            }
        }
    }

    #[test]
    fn fabrics_are_consistent_with_each_other() {
        let n = 16;
        for slot in 0..64u64 {
            for j in 0..n {
                let l = output_sweep_port(j, slot, n);
                assert_eq!(second_fabric_output(l, slot, n), j);
            }
        }
    }

    #[test]
    fn every_input_reaches_every_intermediate_once_per_frame() {
        let n = 8;
        for i in 0..n {
            let mut seen = vec![false; n];
            for t in 0..n as u64 {
                seen[first_fabric(i, t, n)] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn frame_start_offset_connects_to_port_zero() {
        let n = 8;
        for i in 0..n {
            let t = frame_start_offset(i, n);
            assert_eq!(first_fabric(i, t, n), 0, "input {i}");
            assert_eq!(first_fabric(i, t + n as u64, n), 0);
        }
    }

    #[test]
    fn output_sweep_visits_ports_in_increasing_order() {
        let n = 8;
        for j in 0..n {
            for t in 0..32u64 {
                let a = output_sweep_port(j, t, n);
                let b = output_sweep_port(j, t + 1, n);
                assert_eq!((a + 1) % n, b);
            }
        }
    }
}
