//! Uniform Frame Spreading (UFS), reference [11] of the paper.
//!
//! Each input accumulates packets in per-output VOQs and only transmits
//! *full frames* of N packets, all destined to the same output.  A frame is
//! transmitted over N consecutive slots with packet `k` going to intermediate
//! port `k`, which (given the increasing connection pattern of the first
//! fabric) means transmission starts in the slot where the input is connected
//! to intermediate port 0.  Because every frame deposits exactly one packet
//! at every intermediate port, the per-output queues at all intermediate
//! ports stay equal in length and packets of a VOQ depart in order without
//! any resequencing.
//!
//! The price is delay: at light load a VOQ takes a long time to accumulate N
//! packets (the O(N³) worst case the paper cites), which is exactly the
//! behaviour Figures 6 and 7 show and Sprinklers is designed to avoid.

use crate::fabric::{first_fabric_at, second_fabric_output_at};
use crate::frame::{FrameInService, FrameVoq};
use crate::intermediate::SimpleIntermediate;
use sprinklers_core::occupancy::OccupancySet;
use sprinklers_core::packet::{DeliveredPacket, Packet};
use sprinklers_core::switch::{step_batch_rotating, DeliverySink, Switch, SwitchStats};
use std::collections::VecDeque;

/// One UFS input port.
struct UfsInput {
    voqs: Vec<FrameVoq>,
    /// Full frames ready to transmit, FCFS.
    ready_frames: VecDeque<Vec<Packet>>,
    in_service: Option<FrameInService>,
}

impl UfsInput {
    fn new(n: usize) -> Self {
        UfsInput {
            voqs: (0..n).map(|_| FrameVoq::new()).collect(),
            ready_frames: VecDeque::new(),
            in_service: None,
        }
    }

    /// True if a step can move a packet out of this input: UFS only ever
    /// transmits full frames, so packets still accumulating in partial VOQs
    /// make the input a provable no-op to visit.  This is the input-occupancy
    /// bitset criterion.
    fn transmittable(&self) -> bool {
        self.in_service.is_some() || !self.ready_frames.is_empty()
    }
}

/// The Uniform Frame Spreading switch.
pub struct UfsSwitch {
    n: usize,
    inputs: Vec<UfsInput>,
    intermediates: Vec<SimpleIntermediate>,
    /// Inputs with a frame ready or in flight / intermediates with queued
    /// packets — the only ports a step has to visit.  At light load UFS
    /// rarely completes a frame, so whole slots cost O(1).
    occupied_inputs: OccupancySet,
    occupied_intermediates: OccupancySet,
    /// Recycled frame buffers: frames finished by any input return here and
    /// are reused by the next frame formed, so steady-state frame formation
    /// performs no heap allocation.
    frame_pool: Vec<Vec<Packet>>,
    /// Running totals so `stats()` is O(1) at every sampling boundary.
    queued_inputs: usize,
    queued_intermediates: usize,
    arrivals: u64,
    departures: u64,
}

impl UfsSwitch {
    /// Create an `n`-port UFS switch.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2);
        sprinklers_core::packet::assert_ports_fit(n);
        UfsSwitch {
            n,
            inputs: (0..n).map(|_| UfsInput::new(n)).collect(),
            intermediates: (0..n).map(|l| SimpleIntermediate::new(l, n)).collect(),
            occupied_inputs: OccupancySet::new(n),
            occupied_intermediates: OccupancySet::new(n),
            frame_pool: Vec::new(),
            queued_inputs: 0,
            queued_intermediates: 0,
            arrivals: 0,
            departures: 0,
        }
    }

    /// Advance one slot whose fabric phase `t == slot mod N` is already
    /// reduced (shared by `step` and the phase-rotating `step_batch`).
    /// Both passes walk the occupancy bitsets in ascending port order.
    // lint: hot-path
    fn step_at(&mut self, slot: u64, t: usize, sink: &mut dyn DeliverySink) {
        let mut w = 0usize;
        while let Some(wi) = self.occupied_intermediates.next_occupied_word(w) {
            let mut bits = self.occupied_intermediates.word(wi);
            while bits != 0 {
                let l = (wi << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let output = second_fabric_output_at(l, t, self.n);
                if let Some(packet) = self.intermediates[l].dequeue(output) {
                    if self.intermediates[l].queued_packets() == 0 {
                        self.occupied_intermediates.remove(l);
                    }
                    self.queued_intermediates -= 1;
                    self.departures += 1;
                    sink.deliver(DeliveredPacket::new(packet, slot));
                }
            }
            w = wi + 1;
        }
        let mut w = 0usize;
        while let Some(wi) = self.occupied_inputs.next_occupied_word(w) {
            let mut bits = self.occupied_inputs.word(wi);
            while bits != 0 {
                let i = (wi << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let connected = first_fabric_at(i, t, self.n);
                let input = &mut self.inputs[i];
                // Start a new frame only when connected to intermediate port 0, so
                // that packet k of every frame lands on intermediate port k.
                if input.in_service.is_none() && connected == 0 {
                    if let Some(frame) = input.ready_frames.pop_front() {
                        input.in_service = Some(FrameInService::new(frame));
                    }
                }
                if let Some(svc) = &mut input.in_service {
                    debug_assert_eq!(svc.next_port(), connected);
                    let packet = svc.serve_next();
                    self.queued_inputs -= 1;
                    self.queued_intermediates += 1;
                    self.occupied_intermediates.insert(connected);
                    self.intermediates[connected].receive(packet);
                    if svc.finished() {
                        if let Some(done) = input.in_service.take() {
                            self.frame_pool.push(done.recycle());
                        }
                        if !input.transmittable() {
                            self.occupied_inputs.remove(i);
                        }
                    }
                }
            }
            w = wi + 1;
        }
    }
}

impl Switch for UfsSwitch {
    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> &'static str {
        "ufs"
    }

    fn arrive(&mut self, packet: Packet) {
        debug_assert!(packet.input() < self.n && packet.output() < self.n);
        self.arrivals += 1;
        self.queued_inputs += 1;
        let i = packet.input();
        let input = &mut self.inputs[i];
        let output = packet.output();
        input.voqs[output].push(packet);
        if input.voqs[output].len() >= self.n {
            let mut frame = self.frame_pool.pop().unwrap_or_default();
            let formed = input.voqs[output].pop_full_frame_into(self.n, &mut frame);
            debug_assert!(formed);
            input.ready_frames.push_back(frame);
            // A full frame makes the input worth visiting again.
            self.occupied_inputs.insert(i);
        }
    }

    fn step(&mut self, slot: u64, sink: &mut dyn DeliverySink) {
        let t = (slot % self.n as u64) as usize;
        self.step_at(slot, t, sink);
    }

    fn step_batch(&mut self, first_slot: u64, count: u32, sink: &mut dyn DeliverySink) {
        step_batch_rotating(self.n, first_slot, count, |slot, t| {
            // Empty bitsets ⇒ a step is a provable no-op (any packets left
            // are stranded in partial VOQs, which only an arrival can grow
            // into a frame), so the rest of the batch can be elided.  This is
            // strictly stronger than the old arrivals == departures check,
            // which never fired while partial frames were stranded.
            if self.occupied_inputs.is_empty() && self.occupied_intermediates.is_empty() {
                return false;
            }
            self.step_at(slot, t, sink);
            true
        });
    }

    fn stats(&self) -> SwitchStats {
        SwitchStats {
            queued_at_inputs: self.queued_inputs,
            queued_at_intermediates: self.queued_intermediates,
            queued_at_outputs: 0,
            total_arrivals: self.arrivals,
            total_departures: self.departures,
            total_dropped: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(input: usize, output: usize, seq: u64, slot: u64) -> Packet {
        Packet::new(input, output, seq, slot).with_voq_seq(seq)
    }

    #[test]
    fn incomplete_frames_are_never_transmitted() {
        let n = 4;
        let mut sw = UfsSwitch::new(n);
        for k in 0..3 {
            sw.arrive(pkt(0, 1, k, 0));
        }
        let mut delivered = Vec::new();
        for slot in 0..64 {
            sw.step(slot, &mut delivered);
        }
        assert!(
            delivered.is_empty(),
            "UFS must hold packets until a full frame forms"
        );
        assert_eq!(sw.stats().queued_at_inputs, 3);
    }

    #[test]
    fn a_full_frame_is_delivered_in_order_and_in_a_burst() {
        let n = 4;
        let mut sw = UfsSwitch::new(n);
        for k in 0..n as u64 {
            sw.arrive(pkt(2, 1, k, 0));
        }
        let mut delivered = Vec::new();
        for slot in 0..64 {
            sw.step(slot, &mut delivered);
        }
        assert_eq!(delivered.len(), n);
        let seqs: Vec<u64> = delivered.iter().map(|d| d.packet.voq_seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3], "frame departs in order");
        // The frame reaches the output in consecutive slots.
        for w in delivered.windows(2) {
            assert_eq!(w[1].departure_slot, w[0].departure_slot + 1);
        }
        assert_eq!(sw.stats().total_queued(), 0);
    }

    #[test]
    fn frames_of_different_voqs_are_serviced_fcfs() {
        let n = 4;
        let mut sw = UfsSwitch::new(n);
        for k in 0..n as u64 {
            sw.arrive(pkt(0, 1, k, 0));
        }
        for k in 0..n as u64 {
            sw.arrive(pkt(0, 2, k, 0));
        }
        let mut delivered = Vec::new();
        for slot in 0..64 {
            sw.step(slot, &mut delivered);
        }
        assert_eq!(delivered.len(), 2 * n);
        // The frame to output 1 was completed first, so it starts departing
        // before the frame to output 2 does.
        let first_dep = |out: usize| {
            delivered
                .iter()
                .filter(|d| d.packet.output() == out)
                .map(|d| d.departure_slot)
                .min()
                .unwrap()
        };
        assert!(first_dep(1) < first_dep(2));
    }

    #[test]
    fn frame_packets_land_on_distinct_intermediate_ports() {
        let n = 8;
        let mut sw = UfsSwitch::new(n);
        for k in 0..n as u64 {
            sw.arrive(pkt(3, 6, k, 0));
        }
        let mut delivered = Vec::new();
        for slot in 0..96 {
            sw.step(slot, &mut delivered);
        }
        let mut ports: Vec<usize> = delivered.iter().map(|d| d.packet.intermediate()).collect();
        ports.sort_unstable();
        assert_eq!(ports, (0..n).collect::<Vec<_>>());
    }
}
