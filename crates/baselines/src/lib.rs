//! Baseline load-balanced switch schedulers.
//!
//! The Sprinklers paper compares against four existing schemes (§2, §6); this
//! crate implements all of them, plus the TCP-hashing scheme the paper uses to
//! motivate its design and an ideal output-queued reference, behind the same
//! [`sprinklers_core::switch::Switch`] trait as the Sprinklers switch itself:
//!
//! | Scheme | Module | Ordering guarantee | Notes |
//! |---|---|---|---|
//! | Ideal output-queued switch | [`oq`] | per VOQ | theoretical delay lower bound (infinite speedup) |
//! | Baseline load-balanced switch (Chang et al.) | [`baseline_lb`] | none | implementable delay lower bound |
//! | Uniform Frame Spreading (UFS) | [`ufs`] | per VOQ | full-frame accumulation, long delay at light load |
//! | Full Ordered Frames First (FOFF) | [`foff`] | per VOQ after resequencing | output resequencing buffers |
//! | Padded Frames (PF) | [`padded_frames`] | per VOQ | pads short frames with fake packets |
//! | TCP hashing / AFBR | [`tcp_hash`] | per flow | not stable under adversarial flow mixes |
//!
//! Except for OQ (which idealizes the fabric away entirely), all schemes
//! share the two-stage architecture and the deterministic periodic connection
//! patterns of the generic load-balanced switch (Fig. 1 of the paper); they
//! differ only in how input ports group and schedule packets and in what the
//! intermediate and output stages must do to compensate.
//!
//! Every switch here delivers packets by pushing them into a
//! [`sprinklers_core::switch::DeliverySink`] from its `step` method — see the
//! `sprinklers-core` crate docs for the sink-based fast path contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline_lb;
pub mod fabric;
pub mod foff;
pub mod frame;
pub mod intermediate;
pub mod oq;
pub mod padded_frames;
pub mod resequencer;
pub mod tcp_hash;
pub mod ufs;

pub use baseline_lb::BaselineLbSwitch;
pub use foff::FoffSwitch;
pub use oq::OutputQueuedSwitch;
pub use padded_frames::PaddedFramesSwitch;
pub use tcp_hash::TcpHashSwitch;
pub use ufs::UfsSwitch;

/// Construct every baseline switch (the four ordered schemes, the unordered
/// baseline LB switch and the ideal OQ reference), for experiment sweeps that
/// compare all schemes at once.
pub fn all_baselines(n: usize, seed: u64) -> Vec<Box<dyn sprinklers_core::switch::Switch>> {
    vec![
        Box::new(OutputQueuedSwitch::new(n)),
        Box::new(BaselineLbSwitch::new(n)),
        Box::new(UfsSwitch::new(n)),
        Box::new(FoffSwitch::new(n)),
        Box::new(PaddedFramesSwitch::new(
            n,
            PaddedFramesSwitch::default_threshold(n),
        )),
        Box::new(TcpHashSwitch::new(n, seed)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_baselines_builds_six_switches() {
        let switches = all_baselines(8, 1);
        assert_eq!(switches.len(), 6);
        let names: Vec<&str> = switches.iter().map(|s| s.name()).collect();
        assert!(names.contains(&"oq"));
        assert!(names.contains(&"baseline-lb"));
        assert!(names.contains(&"ufs"));
        assert!(names.contains(&"foff"));
        assert!(names.contains(&"padded-frames"));
        assert!(names.contains(&"tcp-hash"));
    }
}
