//! TCP hashing / Application Flow Based Routing (AFBR), §2.1 of the paper.
//!
//! Every packet of an application flow is sent through the same intermediate
//! port, chosen by hashing the flow identifier.  Packets of a flow therefore
//! experience FIFO queueing along a single path and can never be reordered —
//! but two heavy flows that hash to the same intermediate port overload it,
//! so the scheme cannot guarantee stability (the motivation for Sprinklers'
//! load-aware, variable-size striping).  Per-VOQ order is *not* preserved:
//! different flows of the same VOQ may take different paths.

use crate::fabric::{first_fabric_at, second_fabric_output_at};
use crate::intermediate::SimpleIntermediate;
use sprinklers_core::occupancy::OccupancySet;
use sprinklers_core::packet::{DeliveredPacket, Packet};
use sprinklers_core::switch::{step_batch_rotating, DeliverySink, Switch, SwitchStats};
use std::collections::VecDeque;

/// One TCP-hashing input port: a FIFO per intermediate port.
struct HashInput {
    per_intermediate: Vec<VecDeque<Packet>>,
    /// Running total across the per-path FIFOs, so the switch's occupancy
    /// bitset and `stats()` never rescan the n queues.
    queued: usize,
}

impl HashInput {
    fn new(n: usize) -> Self {
        HashInput {
            // Pre-sized so the modest per-path queues of a stable run never
            // hit a first-time capacity growth on the hot arrive path.  The
            // cap keeps the up-front cost linear-per-queue at large N (there
            // are n² queues per switch, so an uncapped 2n here would be
            // cubic in ports).
            per_intermediate: (0..n)
                .map(|_| VecDeque::with_capacity((2 * n).min(32)))
                .collect(),
            queued: 0,
        }
    }
}

/// The TCP-hashing (AFBR) switch.
pub struct TcpHashSwitch {
    n: usize,
    seed: u64,
    inputs: Vec<HashInput>,
    intermediates: Vec<SimpleIntermediate>,
    /// Inputs/intermediates with any queued packet — the ports a step visits.
    occupied_inputs: OccupancySet,
    occupied_intermediates: OccupancySet,
    /// Running totals so `stats()` is O(1) at every sampling boundary.
    queued_inputs: usize,
    queued_intermediates: usize,
    arrivals: u64,
    departures: u64,
}

impl TcpHashSwitch {
    /// Create an `n`-port TCP-hashing switch; `seed` perturbs the flow hash.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n >= 2);
        sprinklers_core::packet::assert_ports_fit(n);
        TcpHashSwitch {
            n,
            seed,
            inputs: (0..n).map(|_| HashInput::new(n)).collect(),
            intermediates: (0..n).map(|l| SimpleIntermediate::new(l, n)).collect(),
            occupied_inputs: OccupancySet::new(n),
            occupied_intermediates: OccupancySet::new(n),
            queued_inputs: 0,
            queued_intermediates: 0,
            arrivals: 0,
            departures: 0,
        }
    }

    /// The intermediate port a flow is pinned to.
    pub fn hash_flow(&self, flow: u64) -> usize {
        // SplitMix64-style avalanche; good enough to spread flow ids evenly.
        let mut x = flow ^ self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x % self.n as u64) as usize
    }

    /// Advance one slot whose fabric phase `t == slot mod N` is already
    /// reduced (shared by `step` and the phase-rotating `step_batch`).
    /// Both passes walk the occupancy bitsets in ascending port order.
    // lint: hot-path
    fn step_at(&mut self, slot: u64, t: usize, sink: &mut dyn DeliverySink) {
        let mut w = 0usize;
        while let Some(wi) = self.occupied_intermediates.next_occupied_word(w) {
            let mut bits = self.occupied_intermediates.word(wi);
            while bits != 0 {
                let l = (wi << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let output = second_fabric_output_at(l, t, self.n);
                if let Some(packet) = self.intermediates[l].dequeue(output) {
                    if self.intermediates[l].queued_packets() == 0 {
                        self.occupied_intermediates.remove(l);
                    }
                    self.queued_intermediates -= 1;
                    self.departures += 1;
                    sink.deliver(DeliveredPacket::new(packet, slot));
                }
            }
            w = wi + 1;
        }
        // An occupied input may still miss: its packets can be pinned to
        // per-path FIFOs other than the one the fabric reaches this slot.
        let mut w = 0usize;
        while let Some(wi) = self.occupied_inputs.next_occupied_word(w) {
            let mut bits = self.occupied_inputs.word(wi);
            while bits != 0 {
                let i = (wi << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let l = first_fabric_at(i, t, self.n);
                if let Some(mut packet) = self.inputs[i].per_intermediate[l].pop_front() {
                    self.inputs[i].queued -= 1;
                    if self.inputs[i].queued == 0 {
                        self.occupied_inputs.remove(i);
                    }
                    packet.set_intermediate(l);
                    packet.set_stripe_size(1);
                    self.queued_inputs -= 1;
                    self.queued_intermediates += 1;
                    self.occupied_intermediates.insert(l);
                    self.intermediates[l].receive(packet);
                }
            }
            w = wi + 1;
        }
    }
}

impl Switch for TcpHashSwitch {
    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> &'static str {
        "tcp-hash"
    }

    fn arrive(&mut self, packet: Packet) {
        debug_assert!(packet.input() < self.n && packet.output() < self.n);
        self.arrivals += 1;
        self.queued_inputs += 1;
        let l = self.hash_flow(packet.flow);
        let input = &mut self.inputs[packet.input()];
        input.queued += 1;
        self.occupied_inputs.insert(packet.input());
        input.per_intermediate[l].push_back(packet);
    }

    fn step(&mut self, slot: u64, sink: &mut dyn DeliverySink) {
        let t = (slot % self.n as u64) as usize;
        self.step_at(slot, t, sink);
    }

    fn step_batch(&mut self, first_slot: u64, count: u32, sink: &mut dyn DeliverySink) {
        step_batch_rotating(self.n, first_slot, count, |slot, t| {
            // An empty switch — both occupancy bitsets empty — is a no-op to
            // step; elide the rest of the batch.
            if self.occupied_inputs.is_empty() && self.occupied_intermediates.is_empty() {
                return false;
            }
            self.step_at(slot, t, sink);
            true
        });
    }

    fn stats(&self) -> SwitchStats {
        SwitchStats {
            queued_at_inputs: self.queued_inputs,
            queued_at_intermediates: self.queued_intermediates,
            queued_at_outputs: 0,
            total_arrivals: self.arrivals,
            total_departures: self.departures,
            total_dropped: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(input: usize, output: usize, flow: u64, seq: u64) -> Packet {
        Packet::new(input, output, seq, 0)
            .with_flow(flow)
            .with_voq_seq(seq)
    }

    #[test]
    fn hash_is_deterministic_and_in_range() {
        let sw = TcpHashSwitch::new(16, 7);
        for flow in 0..1000u64 {
            let a = sw.hash_flow(flow);
            let b = sw.hash_flow(flow);
            assert_eq!(a, b);
            assert!(a < 16);
        }
    }

    #[test]
    fn hash_spreads_flows_reasonably_evenly() {
        let n = 8;
        let sw = TcpHashSwitch::new(n, 3);
        let mut counts = vec![0usize; n];
        for flow in 0..8000u64 {
            counts[sw.hash_flow(flow)] += 1;
        }
        for (port, &c) in counts.iter().enumerate() {
            assert!(
                c > 700 && c < 1300,
                "port {port} got {c} of 8000 flows — the hash is badly skewed"
            );
        }
    }

    #[test]
    fn packets_of_one_flow_use_one_intermediate_port() {
        let n = 8;
        let mut sw = TcpHashSwitch::new(n, 1);
        for k in 0..16u64 {
            sw.arrive(pkt(2, 5, 42, k));
        }
        let mut delivered = Vec::new();
        for slot in 0..512 {
            sw.step(slot, &mut delivered);
        }
        assert_eq!(delivered.len(), 16);
        let ports: std::collections::HashSet<usize> =
            delivered.iter().map(|d| d.packet.intermediate()).collect();
        assert_eq!(
            ports.len(),
            1,
            "a flow must stick to a single intermediate port"
        );
        // Per-flow order is preserved.
        let seqs: Vec<u64> = delivered.iter().map(|d| d.packet.voq_seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted);
    }

    #[test]
    fn different_flows_can_use_different_paths() {
        let n = 16;
        let sw = TcpHashSwitch::new(n, 9);
        let ports: std::collections::HashSet<usize> =
            (0..64u64).map(|flow| sw.hash_flow(flow)).collect();
        assert!(ports.len() > 1);
    }

    #[test]
    fn conserves_packets() {
        let n = 4;
        let mut sw = TcpHashSwitch::new(n, 5);
        let mut sent = 0u64;
        for slot in 0..200u64 {
            for i in 0..n {
                sw.arrive(pkt(i, (i + 1) % n, slot % 7, slot));
                sent += 1;
            }
            sw.step(slot, &mut sprinklers_core::switch::NullSink);
        }
        for slot in 200..4000u64 {
            sw.step(slot, &mut sprinklers_core::switch::NullSink);
        }
        assert_eq!(sw.stats().total_departures, sent);
    }
}
