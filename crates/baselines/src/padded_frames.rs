//! Padded Frames (PF), reference [9] of the paper.
//!
//! PF behaves like UFS whenever a full frame is available.  When no full
//! frame exists, it looks at the longest VOQ at the input; if that VOQ holds
//! at least `threshold` packets, PF pads it with fake packets up to a full
//! frame of N and transmits the padded frame immediately.  The fake packets
//! consume switch capacity but are discarded at the output; in exchange, a
//! VOQ never waits longer than it takes to reach the threshold, which removes
//! UFS's frame-accumulation delay at light load while preserving packet
//! order (padding does not disturb the equal-queue-length invariant).

use crate::fabric::{first_fabric_at, second_fabric_output_at};
use crate::frame::{FrameInService, FrameVoq};
use crate::intermediate::SimpleIntermediate;
use sprinklers_core::occupancy::OccupancySet;
use sprinklers_core::packet::{DeliveredPacket, Packet};
use sprinklers_core::switch::{step_batch_rotating, DeliverySink, Switch, SwitchStats};
use std::collections::VecDeque;

/// One PF input port.
struct PfInput {
    voqs: Vec<FrameVoq>,
    ready_frames: VecDeque<Vec<Packet>>,
    in_service: Option<FrameInService>,
    /// Running packet count with the same semantics the old O(N) rescan had
    /// (VOQ data + ready frames + everything left in the frame in service,
    /// padding included), so `stats()` is O(1).
    queued: usize,
    /// VOQs currently at or above the padding threshold.  Only they can
    /// trigger a padded frame, so the count feeds [`Self::transmittable`].
    ripe_voqs: usize,
}

impl PfInput {
    fn new(n: usize) -> Self {
        PfInput {
            voqs: (0..n).map(|_| FrameVoq::new()).collect(),
            ready_frames: VecDeque::new(),
            in_service: None,
            queued: 0,
            ripe_voqs: 0,
        }
    }

    /// True if a step could move a packet out of this input: a frame is in
    /// flight or ready, or some VOQ has reached the padding threshold.  VOQs
    /// below the threshold strand until more arrivals push them over it, so
    /// an input holding only those is a provable no-op to visit — the
    /// input-occupancy bitset criterion.
    fn transmittable(&self) -> bool {
        self.in_service.is_some() || !self.ready_frames.is_empty() || self.ripe_voqs > 0
    }

    /// Index and length of the longest VOQ.
    fn longest_voq(&self) -> (usize, usize) {
        self.voqs
            .iter()
            .enumerate()
            .map(|(j, v)| (j, v.len()))
            .max_by_key(|&(_, len)| len)
            .unwrap_or((0, 0))
    }
}

/// The Padded Frames switch.
pub struct PaddedFramesSwitch {
    n: usize,
    threshold: usize,
    inputs: Vec<PfInput>,
    intermediates: Vec<SimpleIntermediate>,
    /// Inputs that could transmit (frame ready/in flight or a threshold-ripe
    /// VOQ) and intermediates with queued packets — the ports a step visits.
    occupied_inputs: OccupancySet,
    occupied_intermediates: OccupancySet,
    /// Recycled frame buffers shared by every input (see [`crate::UfsSwitch`]).
    frame_pool: Vec<Vec<Packet>>,
    /// Running totals so `stats()` is O(1) at every sampling boundary.
    queued_inputs: usize,
    queued_intermediates: usize,
    arrivals: u64,
    departures: u64,
    padding_sent: u64,
    padding_delivered: u64,
}

impl PaddedFramesSwitch {
    /// Create an `n`-port PF switch with the given padding threshold
    /// (a frame is padded only if the longest VOQ holds at least `threshold`
    /// packets).
    pub fn new(n: usize, threshold: usize) -> Self {
        assert!(n >= 2);
        sprinklers_core::packet::assert_ports_fit(n);
        assert!(
            threshold >= 1 && threshold <= n,
            "threshold must be in 1..=N"
        );
        PaddedFramesSwitch {
            n,
            threshold,
            inputs: (0..n).map(|_| PfInput::new(n)).collect(),
            intermediates: (0..n).map(|l| SimpleIntermediate::new(l, n)).collect(),
            occupied_inputs: OccupancySet::new(n),
            occupied_intermediates: OccupancySet::new(n),
            frame_pool: Vec::new(),
            queued_inputs: 0,
            queued_intermediates: 0,
            arrivals: 0,
            departures: 0,
            padding_sent: 0,
            padding_delivered: 0,
        }
    }

    /// The default padding threshold used by the experiments: `N/2`.
    pub fn default_threshold(n: usize) -> usize {
        (n / 2).max(1)
    }

    /// Number of fake packets transmitted so far.
    pub fn padding_sent(&self) -> u64 {
        self.padding_sent
    }

    /// Advance one slot whose fabric phase `t == slot mod N` is already
    /// reduced (shared by `step` and the phase-rotating `step_batch`).
    /// Both passes walk the occupancy bitsets in ascending port order.
    // lint: hot-path
    fn step_at(&mut self, slot: u64, t: usize, sink: &mut dyn DeliverySink) {
        let mut w = 0usize;
        while let Some(wi) = self.occupied_intermediates.next_occupied_word(w) {
            let mut bits = self.occupied_intermediates.word(wi);
            while bits != 0 {
                let l = (wi << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let output = second_fabric_output_at(l, t, self.n);
                if let Some(packet) = self.intermediates[l].dequeue(output) {
                    if self.intermediates[l].queued_packets() == 0 {
                        self.occupied_intermediates.remove(l);
                    }
                    self.queued_intermediates -= 1;
                    if packet.is_padding() {
                        self.padding_delivered += 1;
                    } else {
                        self.departures += 1;
                    }
                    sink.deliver(DeliveredPacket::new(packet, slot));
                }
            }
            w = wi + 1;
        }
        let mut w = 0usize;
        while let Some(wi) = self.occupied_inputs.next_occupied_word(w) {
            let mut bits = self.occupied_inputs.word(wi);
            while bits != 0 {
                let i = (wi << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let connected = first_fabric_at(i, t, self.n);
                let input = &mut self.inputs[i];
                if input.in_service.is_none() && connected == 0 {
                    // Full frames first; otherwise pad the longest VOQ if it has
                    // reached the threshold.
                    if let Some(frame) = input.ready_frames.pop_front() {
                        input.in_service = Some(FrameInService::new(frame));
                    } else {
                        let (longest, len) = input.longest_voq();
                        if len >= self.threshold {
                            let mut frame = self.frame_pool.pop().unwrap_or_default();
                            if input.voqs[longest]
                                .pop_padded_frame_into(self.n, i, longest, slot, &mut frame)
                            {
                                let pad = frame.iter().filter(|p| p.is_padding()).count();
                                self.padding_sent += pad as u64;
                                // The padding now occupies the frame in service,
                                // which the input-side occupancy stat covers; the
                                // padded VOQ drops from >= threshold to empty.
                                input.queued += pad;
                                self.queued_inputs += pad;
                                input.ripe_voqs -= 1;
                                input.in_service = Some(FrameInService::new(frame));
                            } else {
                                self.frame_pool.push(frame);
                            }
                        }
                    }
                }
                if let Some(svc) = &mut input.in_service {
                    debug_assert_eq!(svc.next_port(), connected);
                    let packet = svc.serve_next();
                    input.queued -= 1;
                    self.queued_inputs -= 1;
                    self.queued_intermediates += 1;
                    self.occupied_intermediates.insert(connected);
                    self.intermediates[connected].receive(packet);
                    if svc.finished() {
                        if let Some(done) = input.in_service.take() {
                            self.frame_pool.push(done.recycle());
                        }
                        if !input.transmittable() {
                            self.occupied_inputs.remove(i);
                        }
                    }
                }
            }
            w = wi + 1;
        }
    }
}

impl Switch for PaddedFramesSwitch {
    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> &'static str {
        "padded-frames"
    }

    fn arrive(&mut self, packet: Packet) {
        debug_assert!(packet.input() < self.n && packet.output() < self.n);
        self.arrivals += 1;
        self.queued_inputs += 1;
        let i = packet.input();
        let input = &mut self.inputs[i];
        let output = packet.output();
        input.queued += 1;
        input.voqs[output].push(packet);
        if input.voqs[output].len() == self.threshold {
            input.ripe_voqs += 1;
        }
        if input.voqs[output].len() >= self.n {
            let mut frame = self.frame_pool.pop().unwrap_or_default();
            let formed = input.voqs[output].pop_full_frame_into(self.n, &mut frame);
            debug_assert!(formed);
            input.ready_frames.push_back(frame);
            // The drained VOQ drops from n (>= threshold) back below it.
            input.ripe_voqs -= 1;
        }
        if input.transmittable() {
            self.occupied_inputs.insert(i);
        }
    }

    fn step(&mut self, slot: u64, sink: &mut dyn DeliverySink) {
        let t = (slot % self.n as u64) as usize;
        self.step_at(slot, t, sink);
    }

    fn step_batch(&mut self, first_slot: u64, count: u32, sink: &mut dyn DeliverySink) {
        step_batch_rotating(self.n, first_slot, count, |slot, t| {
            // Empty bitsets ⇒ a step is a provable no-op: nothing is queued
            // at the intermediate stage (padding included — fake packets set
            // the same bits real ones do) and no input can transmit (any
            // leftover VOQ residue is below the padding threshold, which
            // only an arrival can change), so the rest of the batch can be
            // elided.  Strictly stronger than the old conservation-counter
            // check, which never fired while sub-threshold residue stranded.
            if self.occupied_inputs.is_empty() && self.occupied_intermediates.is_empty() {
                return false;
            }
            self.step_at(slot, t, sink);
            true
        });
    }

    fn stats(&self) -> SwitchStats {
        SwitchStats {
            queued_at_inputs: self.queued_inputs,
            queued_at_intermediates: self.queued_intermediates,
            queued_at_outputs: 0,
            total_arrivals: self.arrivals,
            total_departures: self.departures,
            total_dropped: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(input: usize, output: usize, seq: u64, slot: u64) -> Packet {
        Packet::new(input, output, seq, slot).with_voq_seq(seq)
    }

    #[test]
    fn short_voq_below_threshold_waits() {
        let n = 8;
        let mut sw = PaddedFramesSwitch::new(n, 4);
        sw.arrive(pkt(0, 1, 0, 0));
        let mut delivered = Vec::new();
        for slot in 0..64 {
            sw.step(slot, &mut delivered);
        }
        assert!(delivered.is_empty());
    }

    #[test]
    fn voq_reaching_threshold_is_padded_and_delivered() {
        let n = 8;
        let mut sw = PaddedFramesSwitch::new(n, 3);
        for k in 0..3 {
            sw.arrive(pkt(0, 1, k, 0));
        }
        let mut delivered = Vec::new();
        for slot in 0..64 {
            sw.step(slot, &mut delivered);
        }
        let data: Vec<&DeliveredPacket> = delivered
            .iter()
            .filter(|d| !d.packet.is_padding())
            .collect();
        let padding = delivered.len() - data.len();
        assert_eq!(data.len(), 3);
        assert_eq!(padding, n - 3);
        assert_eq!(sw.padding_sent(), (n - 3) as u64);
        // In order.
        let seqs: Vec<u64> = data.iter().map(|d| d.packet.voq_seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn full_frames_take_priority_over_padding() {
        let n = 4;
        let mut sw = PaddedFramesSwitch::new(n, 1);
        // A full frame to output 2 and a single packet to output 3.
        for k in 0..n as u64 {
            sw.arrive(pkt(0, 2, k, 0));
        }
        sw.arrive(pkt(0, 3, 0, 0));
        let mut delivered = Vec::new();
        for slot in 0..64 {
            sw.step(slot, &mut delivered);
        }
        // The full frame to output 2 starts departing before the padded
        // single packet to output 3 does.
        let first_frame_dep = delivered
            .iter()
            .filter(|d| !d.packet.is_padding() && d.packet.output() == 2)
            .map(|d| d.departure_slot)
            .min()
            .unwrap();
        let padded_dep = delivered
            .iter()
            .filter(|d| !d.packet.is_padding() && d.packet.output() == 3)
            .map(|d| d.departure_slot)
            .min()
            .unwrap();
        assert!(first_frame_dep < padded_dep, "the full frame departs first");
        // Everything, including the padded single packet, eventually departs.
        let data_count = delivered.iter().filter(|d| !d.packet.is_padding()).count();
        assert_eq!(data_count, n + 1);
    }

    /// The transmittability bitset (frames + threshold-ripe VOQs) and the
    /// running counters must agree with brute-force rescans throughout a
    /// random interleaving, including past the 64-port word boundary.
    #[test]
    fn occupancy_bitsets_agree_with_brute_force_scans() {
        fn check(sw: &PaddedFramesSwitch, context: &str) {
            for i in 0..sw.n {
                let input = &sw.inputs[i];
                assert_eq!(
                    sw.occupied_inputs.contains(i),
                    input.transmittable(),
                    "{context}: input {i} bit diverged"
                );
                let ripe = input
                    .voqs
                    .iter()
                    .filter(|v| v.len() >= sw.threshold)
                    .count();
                assert_eq!(input.ripe_voqs, ripe, "{context}: input {i} ripe count");
                let rescan = input.voqs.iter().map(FrameVoq::len).sum::<usize>()
                    + input.ready_frames.iter().map(Vec::len).sum::<usize>()
                    + input
                        .in_service
                        .as_ref()
                        .map_or(0, FrameInService::remaining);
                assert_eq!(input.queued, rescan, "{context}: input {i} counter");
            }
            for l in 0..sw.n {
                assert_eq!(
                    sw.occupied_intermediates.contains(l),
                    sw.intermediates[l].queued_packets() > 0,
                    "{context}: intermediate {l} bit diverged"
                );
            }
        }

        for n in [8usize, 70] {
            let mut sw = PaddedFramesSwitch::new(n, PaddedFramesSwitch::default_threshold(n));
            let mut seqs = vec![0u64; n * n];
            for slot in 0..(8 * n as u64) {
                for i in 0..n {
                    // Concentrate on a few outputs so thresholds are crossed
                    // and padded frames actually form.
                    if (i + slot as usize).is_multiple_of(2) {
                        let output = (i + slot as usize / 16) % 3;
                        let key = i * n + output;
                        sw.arrive(pkt(i, output, seqs[key], slot));
                        seqs[key] += 1;
                    }
                }
                sw.step(slot, &mut sprinklers_core::switch::NullSink);
                if slot % 5 == 0 {
                    check(&sw, &format!("n={n} slot={slot}"));
                }
            }
            assert!(sw.padding_sent() > 0, "padding never triggered at n={n}");
            for slot in (8 * n as u64)..(40 * n as u64) {
                sw.step(slot, &mut sprinklers_core::switch::NullSink);
            }
            check(&sw, &format!("n={n} post-drain"));
        }
    }

    #[test]
    fn default_threshold_is_half_the_ports() {
        assert_eq!(PaddedFramesSwitch::default_threshold(32), 16);
        assert_eq!(PaddedFramesSwitch::default_threshold(2), 1);
    }

    #[test]
    #[should_panic]
    fn threshold_above_n_is_rejected() {
        let _ = PaddedFramesSwitch::new(4, 5);
    }
}
