//! An ideal output-queued (OQ) switch — the delay lower bound of switching
//! theory.
//!
//! Every arriving packet is placed directly into a FIFO at its output port,
//! as if the fabric had infinite internal speedup; the output then drains one
//! packet per slot (its line rate).  No real two-stage load-balanced switch
//! can beat this delay, which makes OQ the natural reference curve for the
//! delay–load figures: the gap between a scheme and OQ is the price that
//! scheme pays for being implementable at line rate.
//!
//! Because each output is a single FIFO, packets of a VOQ (and of a flow)
//! always depart in arrival order — OQ is trivially reordering-free.  Like
//! the store-and-forward switches it is compared against, a packet arriving
//! in slot `t` can depart no earlier than slot `t + 1`.

use sprinklers_core::occupancy::OccupancySet;
use sprinklers_core::packet::{DeliveredPacket, Packet};
use sprinklers_core::switch::{step_batch_rotating, DeliverySink, Switch, SwitchStats};
use std::collections::VecDeque;

/// The ideal output-queued switch.
pub struct OutputQueuedSwitch {
    n: usize,
    outputs: Vec<VecDeque<Packet>>,
    /// Outputs with at least one buffered packet — the only queues a step
    /// has to look at, so a slot costs O(backlogged outputs) instead of O(N).
    occupied: OccupancySet,
    arrivals: u64,
    departures: u64,
}

impl OutputQueuedSwitch {
    /// Create an `n`-port output-queued switch.  The per-output FIFOs are
    /// pre-sized so a lightly loaded warm-up never reallocates.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "a switch needs at least two ports");
        sprinklers_core::packet::assert_ports_fit(n);
        OutputQueuedSwitch {
            n,
            outputs: (0..n)
                .map(|_| VecDeque::with_capacity((2 * n).min(64)))
                .collect(),
            occupied: OccupancySet::new(n),
            arrivals: 0,
            departures: 0,
        }
    }
}

impl Switch for OutputQueuedSwitch {
    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> &'static str {
        "oq"
    }

    fn arrive(&mut self, packet: Packet) {
        debug_assert!(packet.input() < self.n && packet.output() < self.n);
        self.arrivals += 1;
        self.occupied.insert(packet.output());
        self.outputs[packet.output()].push_back(packet);
    }

    // lint: hot-path
    fn step(&mut self, slot: u64, sink: &mut dyn DeliverySink) {
        // Walk only the backlogged outputs, in ascending order like the dense
        // loop did (empty queues were no-ops there).
        let mut w = 0usize;
        while let Some(wi) = self.occupied.next_occupied_word(w) {
            let mut bits = self.occupied.word(wi);
            while bits != 0 {
                let j = (wi << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let queue = &mut self.outputs[j];
                // Store-and-forward: a packet needs at least one slot inside the
                // switch, so same-slot arrivals are not eligible yet.
                let eligible = queue
                    .front()
                    .is_some_and(|packet| packet.arrival_slot < slot);
                if eligible {
                    if let Some(packet) = queue.pop_front() {
                        if queue.is_empty() {
                            self.occupied.remove(j);
                        }
                        self.departures += 1;
                        sink.deliver(DeliveredPacket::new(packet, slot));
                    }
                }
            }
            w = wi + 1;
        }
    }

    fn step_batch(&mut self, first_slot: u64, count: u32, sink: &mut dyn DeliverySink) {
        // OQ has no fabric phase, so the rotated `t` goes unused; the
        // override exists so a batch crosses the `dyn Switch` boundary once
        // instead of once per slot and so an empty switch — the degenerate
        // case of the per-output occupancy check — elides the rest of the
        // batch.  The inner call is static dispatch on the concrete type,
        // sharing the per-slot body with `step`.
        step_batch_rotating(self.n, first_slot, count, |slot, _t| {
            if self.occupied.is_empty() {
                return false;
            }
            self.step(slot, sink);
            true
        });
    }

    fn stats(&self) -> SwitchStats {
        SwitchStats {
            queued_at_inputs: 0,
            queued_at_intermediates: 0,
            // Packets only ever wait at the outputs, so the occupancy the
            // engine samples every N slots is a counter difference, not an
            // O(N) rescan of the queues.
            queued_at_outputs: (self.arrivals - self.departures) as usize,
            total_arrivals: self.arrivals,
            total_departures: self.departures,
            total_dropped: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprinklers_core::switch::NullSink;

    fn pkt(input: usize, output: usize, seq: u64, slot: u64) -> Packet {
        Packet::new(input, output, seq, slot).with_voq_seq(seq)
    }

    #[test]
    fn packet_departs_exactly_one_slot_after_arrival_when_uncontended() {
        let mut sw = OutputQueuedSwitch::new(4);
        sw.arrive(pkt(0, 2, 0, 0));
        let mut delivered = Vec::new();
        sw.step(0, &mut delivered);
        assert!(delivered.is_empty(), "store-and-forward needs one slot");
        sw.step(1, &mut delivered);
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].delay(), 1);
        assert_eq!(delivered[0].packet.output(), 2);
    }

    #[test]
    fn one_departure_per_output_per_slot() {
        let n = 4;
        let mut sw = OutputQueuedSwitch::new(n);
        for i in 0..n {
            sw.arrive(pkt(i, 1, i as u64, 0));
        }
        let mut delivered = Vec::new();
        for slot in 0..8u64 {
            delivered.clear();
            sw.step(slot, &mut delivered);
            assert!(delivered.len() <= 1, "output 1 is a single line");
        }
        assert_eq!(sw.stats().total_departures, n as u64);
    }

    #[test]
    fn departures_preserve_voq_order() {
        let n = 4;
        let mut sw = OutputQueuedSwitch::new(n);
        let mut delivered = Vec::new();
        for slot in 0..64u64 {
            sw.arrive(pkt(0, 3, slot, slot));
            sw.step(slot, &mut delivered);
        }
        for slot in 64..256u64 {
            sw.step(slot, &mut delivered);
        }
        assert_eq!(delivered.len(), 64);
        let seqs: Vec<u64> = delivered.iter().map(|d| d.packet.voq_seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted, "OQ must never reorder");
    }

    #[test]
    fn conserves_packets() {
        let n = 8;
        let mut sw = OutputQueuedSwitch::new(n);
        let mut sent = 0u64;
        for slot in 0..200u64 {
            for i in 0..n {
                if !(i + slot as usize).is_multiple_of(3) {
                    sw.arrive(pkt(i, (i + slot as usize) % n, slot, slot));
                    sent += 1;
                }
            }
            sw.step(slot, &mut NullSink);
        }
        for slot in 200..4000u64 {
            sw.step(slot, &mut NullSink);
        }
        assert_eq!(sw.stats().total_departures, sent);
        assert_eq!(sw.stats().total_queued(), 0);
    }

    #[test]
    fn stats_count_output_queueing() {
        let mut sw = OutputQueuedSwitch::new(4);
        sw.arrive(pkt(0, 1, 0, 0));
        sw.arrive(pkt(2, 1, 0, 0));
        assert_eq!(sw.stats().queued_at_outputs, 2);
        assert_eq!(sw.stats().queued_at_inputs, 0);
    }
}
