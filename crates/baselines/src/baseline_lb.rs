//! The baseline load-balanced switch of Chang et al. (reference [2] of the
//! paper).
//!
//! Each input keeps a single FIFO of arriving packets and, in every slot,
//! forwards its head-of-line packet to whichever intermediate port the first
//! fabric connects it to.  Intermediate ports keep one FIFO per output and
//! forward over the second fabric.  This achieves 100% throughput for any
//! admissible traffic and has the lowest possible average delay of the
//! schemes studied — but packets of the same VOQ take different paths with
//! different queueing delays, so departures can be badly out of order.  The
//! paper uses it as the delay lower bound in Figures 6 and 7.

use crate::fabric::{first_fabric_at, second_fabric_output_at};
use crate::intermediate::SimpleIntermediate;
use sprinklers_core::occupancy::OccupancySet;
use sprinklers_core::packet::{DeliveredPacket, Packet};
use sprinklers_core::switch::{step_batch_rotating, DeliverySink, Switch, SwitchStats};
use std::collections::VecDeque;

/// The baseline (unordered) load-balanced switch.
pub struct BaselineLbSwitch {
    n: usize,
    inputs: Vec<VecDeque<Packet>>,
    intermediates: Vec<SimpleIntermediate>,
    /// Inputs with a buffered packet / intermediates with any queued packet —
    /// the only ports a step has to visit.
    occupied_inputs: OccupancySet,
    occupied_intermediates: OccupancySet,
    /// Running totals so `stats()` is O(1) at every sampling boundary.
    queued_inputs: usize,
    queued_intermediates: usize,
    arrivals: u64,
    departures: u64,
}

impl BaselineLbSwitch {
    /// Create an `n`-port baseline load-balanced switch.  The input FIFOs
    /// are pre-sized so a lightly loaded warm-up never reallocates.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "a switch needs at least two ports");
        sprinklers_core::packet::assert_ports_fit(n);
        BaselineLbSwitch {
            n,
            inputs: (0..n)
                .map(|_| VecDeque::with_capacity((2 * n).min(64)))
                .collect(),
            intermediates: (0..n).map(|l| SimpleIntermediate::new(l, n)).collect(),
            occupied_inputs: OccupancySet::new(n),
            occupied_intermediates: OccupancySet::new(n),
            queued_inputs: 0,
            queued_intermediates: 0,
            arrivals: 0,
            departures: 0,
        }
    }

    /// Advance one slot whose fabric phase `t == slot mod N` is already
    /// reduced (shared by `step` and the phase-rotating `step_batch`).
    /// Both passes walk the occupancy bitsets in ascending port order, which
    /// skips exactly the ports the dense loops probed to no effect.
    // lint: hot-path
    fn step_at(&mut self, slot: u64, t: usize, sink: &mut dyn DeliverySink) {
        // Second fabric first (store-and-forward).
        let mut w = 0usize;
        while let Some(wi) = self.occupied_intermediates.next_occupied_word(w) {
            let mut bits = self.occupied_intermediates.word(wi);
            while bits != 0 {
                let l = (wi << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let output = second_fabric_output_at(l, t, self.n);
                if let Some(packet) = self.intermediates[l].dequeue(output) {
                    if self.intermediates[l].queued_packets() == 0 {
                        self.occupied_intermediates.remove(l);
                    }
                    self.queued_intermediates -= 1;
                    self.departures += 1;
                    sink.deliver(DeliveredPacket::new(packet, slot));
                }
            }
            w = wi + 1;
        }
        // First fabric: every backlogged input forwards its head-of-line
        // packet to the intermediate port it is connected to in this slot.
        let mut w = 0usize;
        while let Some(wi) = self.occupied_inputs.next_occupied_word(w) {
            let mut bits = self.occupied_inputs.word(wi);
            while bits != 0 {
                let i = (wi << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                // The occupancy bit guarantees a head-of-line packet; an
                // empty queue here would be a bookkeeping bug, and skipping
                // the port is the benign response.
                let Some(mut packet) = self.inputs[i].pop_front() else {
                    continue;
                };
                if self.inputs[i].is_empty() {
                    self.occupied_inputs.remove(i);
                }
                let l = first_fabric_at(i, t, self.n);
                packet.set_intermediate(l);
                packet.set_stripe_size(1);
                self.queued_inputs -= 1;
                self.queued_intermediates += 1;
                self.occupied_intermediates.insert(l);
                self.intermediates[l].receive(packet);
            }
            w = wi + 1;
        }
    }
}

impl Switch for BaselineLbSwitch {
    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> &'static str {
        "baseline-lb"
    }

    fn arrive(&mut self, packet: Packet) {
        debug_assert!(packet.input() < self.n && packet.output() < self.n);
        self.arrivals += 1;
        self.queued_inputs += 1;
        self.occupied_inputs.insert(packet.input());
        self.inputs[packet.input()].push_back(packet);
    }

    fn step(&mut self, slot: u64, sink: &mut dyn DeliverySink) {
        let t = (slot % self.n as u64) as usize;
        self.step_at(slot, t, sink);
    }

    fn step_batch(&mut self, first_slot: u64, count: u32, sink: &mut dyn DeliverySink) {
        step_batch_rotating(self.n, first_slot, count, |slot, t| {
            // An empty switch — the degenerate case of the per-port
            // occupancy check — is a no-op to step; elide the rest of the
            // batch.
            if self.occupied_inputs.is_empty() && self.occupied_intermediates.is_empty() {
                return false;
            }
            self.step_at(slot, t, sink);
            true
        });
    }

    fn stats(&self) -> SwitchStats {
        SwitchStats {
            queued_at_inputs: self.queued_inputs,
            queued_at_intermediates: self.queued_intermediates,
            queued_at_outputs: 0,
            total_arrivals: self.arrivals,
            total_departures: self.departures,
            total_dropped: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(input: usize, output: usize, seq: u64, slot: u64) -> Packet {
        Packet::new(input, output, seq, slot).with_voq_seq(seq)
    }

    #[test]
    fn single_packet_is_delivered_to_the_right_output() {
        let mut sw = BaselineLbSwitch::new(8);
        sw.arrive(pkt(2, 5, 0, 0));
        let mut delivered = Vec::new();
        for slot in 0..24 {
            sw.step(slot, &mut delivered);
        }
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].packet.output(), 5);
        assert_eq!(sw.stats().total_departures, 1);
    }

    #[test]
    fn input_fifo_is_served_one_packet_per_slot() {
        let mut sw = BaselineLbSwitch::new(4);
        for k in 0..4 {
            sw.arrive(pkt(0, 0, k, 0));
        }
        assert_eq!(sw.stats().queued_at_inputs, 4);
        sw.step(0, &mut sprinklers_core::switch::NullSink);
        assert_eq!(sw.stats().queued_at_inputs, 3);
        sw.step(1, &mut sprinklers_core::switch::NullSink);
        assert_eq!(sw.stats().queued_at_inputs, 2);
    }

    #[test]
    fn packets_spread_across_intermediate_ports() {
        let mut sw = BaselineLbSwitch::new(4);
        for k in 0..4 {
            sw.arrive(pkt(0, 2, k, 0));
        }
        let mut counter = sprinklers_core::switch::CountingSink::default();
        for slot in 0..4 {
            sw.step(slot, &mut counter);
        }
        let delivered = counter.total() as usize;
        // The four packets went to four distinct intermediate ports, so no
        // port ever holds more than one of them; some may already have left.
        for l in 0..4 {
            assert!(sw.intermediates[l].queued_packets() <= 1);
        }
        let queued: usize = sw.intermediates.iter().map(|p| p.queued_packets()).sum();
        assert_eq!(queued + delivered, 4);
    }

    #[test]
    fn conserves_packets() {
        let mut sw = BaselineLbSwitch::new(8);
        let mut sent = 0u64;
        // Destinations decorrelated from the fabric's connection pattern, at
        // 7/8 load so the intermediate queues stay stable.
        for slot in 0..100u64 {
            for i in 0..8 {
                if (i + slot as usize).is_multiple_of(8) {
                    continue;
                }
                sw.arrive(pkt(i, (i + 3 * slot as usize + 1) % 8, slot, slot));
                sent += 1;
            }
            sw.step(slot, &mut sprinklers_core::switch::NullSink);
        }
        for slot in 100..2000u64 {
            sw.step(slot, &mut sprinklers_core::switch::NullSink);
        }
        assert_eq!(sw.stats().total_departures, sent);
        assert_eq!(sw.stats().total_queued(), 0);
    }
}
