//! Frame accumulation and frame transmission state shared by the
//! aggregation-based baselines (UFS, FOFF, PF).
//!
//! A *frame* is a group of exactly N packets of the same VOQ (padded with fake
//! packets in the PF scheme).  Frame-based schemes transmit one frame at a
//! time: packet `k` of the frame goes to intermediate port `k`, which — given
//! the first fabric's increasing connection pattern — means transmission must
//! start in a slot where the input is connected to intermediate port 0 and
//! then proceeds for N consecutive slots.

use sprinklers_core::packet::Packet;
use std::collections::VecDeque;

/// Per-VOQ packet accumulator.
#[derive(Debug, Clone, Default)]
pub struct FrameVoq {
    buffer: VecDeque<Packet>,
}

impl FrameVoq {
    /// Create an empty VOQ.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an arriving packet.
    pub fn push(&mut self, packet: Packet) {
        self.buffer.push_back(packet);
    }

    /// Number of buffered packets.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// True if no packets are buffered.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// Pop a full frame of `frame_size` packets if available.
    pub fn pop_full_frame(&mut self, frame_size: usize) -> Option<Vec<Packet>> {
        let mut frame = Vec::new();
        self.pop_full_frame_into(frame_size, &mut frame)
            .then_some(frame)
    }

    /// Pop a full frame of `frame_size` packets into a caller-provided buffer
    /// (cleared first), returning whether a frame was available.  The buffer
    /// comes from the switch's frame pool, so steady-state frame formation
    /// reuses capacity instead of allocating a fresh `Vec` per frame.
    pub fn pop_full_frame_into(&mut self, frame_size: usize, frame: &mut Vec<Packet>) -> bool {
        frame.clear();
        if self.buffer.len() < frame_size {
            return false;
        }
        frame.extend(self.buffer.drain(..frame_size));
        true
    }

    /// Pop everything that is buffered and pad with fake packets up to
    /// `frame_size` (the Padded Frames operation).  Returns `None` if the VOQ
    /// is empty.
    pub fn pop_padded_frame(
        &mut self,
        frame_size: usize,
        input: usize,
        output: usize,
        now: u64,
    ) -> Option<Vec<Packet>> {
        let mut frame = Vec::new();
        self.pop_padded_frame_into(frame_size, input, output, now, &mut frame)
            .then_some(frame)
    }

    /// [`Self::pop_padded_frame`] into a caller-provided (pooled) buffer.
    pub fn pop_padded_frame_into(
        &mut self,
        frame_size: usize,
        input: usize,
        output: usize,
        now: u64,
        frame: &mut Vec<Packet>,
    ) -> bool {
        frame.clear();
        if self.buffer.is_empty() {
            return false;
        }
        let take = self.buffer.len().min(frame_size);
        frame.extend(self.buffer.drain(..take));
        while frame.len() < frame_size {
            frame.push(Packet::padding(input, output, now));
        }
        true
    }

    /// Pop the oldest buffered packet (used by FOFF's round-robin service of
    /// partial frames).
    pub fn pop_one(&mut self) -> Option<Packet> {
        self.buffer.pop_front()
    }
}

/// A frame in the middle of being spread across the intermediate ports.
#[derive(Debug, Clone)]
pub struct FrameInService {
    packets: Vec<Packet>,
    next: usize,
}

impl FrameInService {
    /// Start transmitting a frame.  Packet `k` is stamped for intermediate
    /// port `k` and with frame (stripe) metadata.
    pub fn new(mut packets: Vec<Packet>) -> Self {
        let size = packets.len();
        for (k, p) in packets.iter_mut().enumerate() {
            p.set_stripe_size(size);
            p.set_stripe_index(k);
            p.set_intermediate(k);
        }
        FrameInService { packets, next: 0 }
    }

    /// The next packet to transmit (to intermediate port `self.next_port()`),
    /// advancing the cursor.
    pub fn serve_next(&mut self) -> Packet {
        let p = self.packets[self.next].clone();
        self.next += 1;
        p
    }

    /// Intermediate port the next packet must go to.
    pub fn next_port(&self) -> usize {
        self.next
    }

    /// True when every packet of the frame has been transmitted.
    pub fn finished(&self) -> bool {
        self.next >= self.packets.len()
    }

    /// Packets not yet transmitted.
    pub fn remaining(&self) -> usize {
        self.packets.len() - self.next
    }

    /// Tear down a finished frame and hand its (cleared) buffer back for
    /// pooling, so the next frame formed at this switch reuses the capacity.
    pub fn recycle(self) -> Vec<Packet> {
        let mut buffer = self.packets;
        buffer.clear();
        buffer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(seq: u64) -> Packet {
        Packet::new(0, 1, seq, 0).with_voq_seq(seq)
    }

    #[test]
    fn full_frame_requires_enough_packets() {
        let mut voq = FrameVoq::new();
        for i in 0..3 {
            voq.push(pkt(i));
        }
        assert!(voq.pop_full_frame(4).is_none());
        voq.push(pkt(3));
        let frame = voq.pop_full_frame(4).unwrap();
        assert_eq!(frame.len(), 4);
        assert!(voq.is_empty());
        // Arrival order is preserved.
        assert!(frame.windows(2).all(|w| w[0].voq_seq < w[1].voq_seq));
    }

    #[test]
    fn padded_frame_fills_with_fakes() {
        let mut voq = FrameVoq::new();
        voq.push(pkt(0));
        voq.push(pkt(1));
        let frame = voq.pop_padded_frame(4, 0, 1, 99).unwrap();
        assert_eq!(frame.len(), 4);
        assert_eq!(frame.iter().filter(|p| p.is_padding()).count(), 2);
        assert!(voq.is_empty());
        assert!(voq.pop_padded_frame(4, 0, 1, 99).is_none());
    }

    #[test]
    fn frame_in_service_stamps_ports_and_metadata() {
        let mut svc = FrameInService::new((0..4).map(pkt).collect());
        for k in 0..4 {
            assert!(!svc.finished());
            assert_eq!(svc.next_port(), k);
            let p = svc.serve_next();
            assert_eq!(p.intermediate(), k);
            assert_eq!(p.stripe_index(), k);
            assert_eq!(p.stripe_size(), 4);
        }
        assert!(svc.finished());
        assert_eq!(svc.remaining(), 0);
    }

    #[test]
    fn pooled_buffers_round_trip_through_frame_service() {
        let mut voq = FrameVoq::new();
        for i in 0..4 {
            voq.push(pkt(i));
        }
        let mut buf = Vec::with_capacity(4);
        assert!(voq.pop_full_frame_into(4, &mut buf));
        assert_eq!(buf.len(), 4);
        let cap = buf.capacity();
        let mut svc = FrameInService::new(buf);
        while !svc.finished() {
            svc.serve_next();
        }
        let recycled = svc.recycle();
        assert!(recycled.is_empty());
        assert_eq!(recycled.capacity(), cap, "capacity survives recycling");
        // An empty VOQ leaves the buffer cleared and reports no frame.
        let mut buf = recycled;
        assert!(!voq.pop_full_frame_into(4, &mut buf));
        assert!(!voq.pop_padded_frame_into(4, 0, 1, 0, &mut buf));
        assert!(buf.is_empty());
    }

    #[test]
    fn pop_one_serves_in_fifo_order() {
        let mut voq = FrameVoq::new();
        voq.push(pkt(5));
        voq.push(pkt(6));
        assert_eq!(voq.pop_one().unwrap().voq_seq, 5);
        assert_eq!(voq.pop_one().unwrap().voq_seq, 6);
        assert!(voq.pop_one().is_none());
    }
}
