//! The simple intermediate-port stage used by the frame-based baselines.
//!
//! Unlike Sprinklers, the baselines do not need Largest-Stripe-First
//! scheduling at the intermediate stage: the baseline load-balanced switch
//! makes no ordering promise at all, and the frame-based schemes (UFS, FOFF,
//! PF) rely on frame alignment or output resequencing instead.  Every
//! intermediate port therefore just keeps one FIFO per output.

use sprinklers_core::packet::Packet;
use std::collections::VecDeque;

/// One intermediate port with per-output FIFO queues.
#[derive(Debug, Clone)]
pub struct SimpleIntermediate {
    port_id: usize,
    queues: Vec<VecDeque<Packet>>,
    queued: usize,
}

impl SimpleIntermediate {
    /// Create intermediate port `port_id` of an `n`-port switch.
    ///
    /// The per-output FIFOs are pre-sized so warm-up never reallocates: a
    /// stable run keeps each queue shallow (the second fabric drains every
    /// output once per frame), so a small capacity covers the usual depth,
    /// and the cap keeps the up-front cost bounded at large N (there are n²
    /// of these queues per switch, so an uncapped 2n would be cubic in
    /// ports).
    pub fn new(port_id: usize, n: usize) -> Self {
        let capacity = (2 * n).min((2048 / n.max(1)).max(4));
        SimpleIntermediate {
            port_id,
            queues: (0..n).map(|_| VecDeque::with_capacity(capacity)).collect(),
            queued: 0,
        }
    }

    /// This port's index.
    pub fn port_id(&self) -> usize {
        self.port_id
    }

    /// Accept a packet from the first fabric.
    // lint: hot-path
    pub fn receive(&mut self, packet: Packet) {
        debug_assert!(packet.output() < self.queues.len());
        self.queues[packet.output()].push_back(packet);
        self.queued += 1;
    }

    /// Serve the output the second fabric currently connects this port to.
    // lint: hot-path
    pub fn dequeue(&mut self, output: usize) -> Option<Packet> {
        let p = self.queues[output].pop_front();
        if p.is_some() {
            self.queued -= 1;
        }
        p
    }

    /// Total packets buffered at this port.
    pub fn queued_packets(&self) -> usize {
        self.queued
    }

    /// Packets buffered for one output.
    pub fn queued_for_output(&self, output: usize) -> usize {
        self.queues[output].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(output: usize, id: u64) -> Packet {
        Packet::new(0, output, id, 0)
    }

    #[test]
    fn fifo_per_output() {
        let mut port = SimpleIntermediate::new(3, 4);
        port.receive(pkt(1, 10));
        port.receive(pkt(1, 11));
        port.receive(pkt(2, 12));
        assert_eq!(port.queued_packets(), 3);
        assert_eq!(port.queued_for_output(1), 2);
        assert_eq!(port.dequeue(1).unwrap().id, 10);
        assert_eq!(port.dequeue(2).unwrap().id, 12);
        assert_eq!(port.dequeue(1).unwrap().id, 11);
        assert!(port.dequeue(1).is_none());
        assert_eq!(port.queued_packets(), 0);
    }

    #[test]
    fn empty_output_returns_none() {
        let mut port = SimpleIntermediate::new(0, 4);
        assert!(port.dequeue(0).is_none());
    }
}
