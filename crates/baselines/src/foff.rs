//! Full Ordered Frames First (FOFF), reference [11] of the paper.
//!
//! FOFF keeps UFS's full-frame service but never lets the input idle waiting
//! for frames: whenever no full frame is being transmitted, the input serves
//! its non-empty VOQs in round-robin order, sending single packets to
//! whatever intermediate port the first fabric currently connects it to.
//! Those "uncommitted" packets can overtake each other inside the switch, so
//! every output maintains a resequencing buffer (bounded by O(N²) in the
//! original paper) that restores per-VOQ order before packets leave the
//! switch.  The extra buffering shows up as additional delay compared with
//! the baseline load-balanced switch, but FOFF avoids UFS's frame-building
//! delay at light load.

use crate::fabric::{first_fabric_at, second_fabric_output_at};
use crate::frame::{FrameInService, FrameVoq};
use crate::intermediate::SimpleIntermediate;
use crate::resequencer::Resequencer;
use sprinklers_core::occupancy::OccupancySet;
use sprinklers_core::packet::{DeliveredPacket, Packet};
use sprinklers_core::switch::{step_batch_rotating, DeliverySink, Switch, SwitchStats};
use std::collections::VecDeque;

/// One FOFF input port.
struct FoffInput {
    voqs: Vec<FrameVoq>,
    ready_frames: VecDeque<Vec<Packet>>,
    in_service: Option<FrameInService>,
    /// Round-robin pointer over VOQs for partial-frame service.
    rr: usize,
    /// Running packet count (VOQs + ready frames + frame in service), so the
    /// occupancy bitset and `stats()` never rescan the n VOQs.
    queued: usize,
}

impl FoffInput {
    fn new(n: usize) -> Self {
        FoffInput {
            voqs: (0..n).map(|_| FrameVoq::new()).collect(),
            ready_frames: VecDeque::new(),
            in_service: None,
            rr: 0,
            queued: 0,
        }
    }

    /// Pop one packet from the next non-empty VOQ in round-robin order.
    fn pop_round_robin(&mut self) -> Option<Packet> {
        let n = self.voqs.len();
        for k in 0..n {
            let idx = (self.rr + k) % n;
            if let Some(p) = self.voqs[idx].pop_one() {
                self.rr = (idx + 1) % n;
                return Some(p);
            }
        }
        None
    }
}

/// The Full Ordered Frames First switch.
pub struct FoffSwitch {
    n: usize,
    inputs: Vec<FoffInput>,
    intermediates: Vec<SimpleIntermediate>,
    resequencers: Vec<Resequencer>,
    /// Inputs holding any packet (FOFF's round-robin partial service can
    /// always move one), intermediates with queued packets, and outputs whose
    /// resequencer buffers anything — the ports a step visits.
    occupied_inputs: OccupancySet,
    occupied_intermediates: OccupancySet,
    occupied_outputs: OccupancySet,
    /// Recycled frame buffers shared by every input (see [`crate::UfsSwitch`]).
    frame_pool: Vec<Vec<Packet>>,
    /// Running totals so `stats()` is O(1) at every sampling boundary.
    queued_inputs: usize,
    queued_intermediates: usize,
    queued_outputs: usize,
    arrivals: u64,
    departures: u64,
}

impl FoffSwitch {
    /// Create an `n`-port FOFF switch.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2);
        sprinklers_core::packet::assert_ports_fit(n);
        FoffSwitch {
            n,
            inputs: (0..n).map(|_| FoffInput::new(n)).collect(),
            intermediates: (0..n).map(|l| SimpleIntermediate::new(l, n)).collect(),
            resequencers: (0..n).map(|_| Resequencer::new(n)).collect(),
            occupied_inputs: OccupancySet::new(n),
            occupied_intermediates: OccupancySet::new(n),
            occupied_outputs: OccupancySet::new(n),
            frame_pool: Vec::new(),
            queued_inputs: 0,
            queued_intermediates: 0,
            queued_outputs: 0,
            arrivals: 0,
            departures: 0,
        }
    }

    /// Advance one slot whose fabric phase `t == slot mod N` is already
    /// reduced (shared by `step` and the phase-rotating `step_batch`).
    /// All three passes walk their occupancy bitsets in ascending port order.
    // lint: hot-path
    fn step_at(&mut self, slot: u64, t: usize, sink: &mut dyn DeliverySink) {
        // Second fabric: move packets into the output resequencers, then let
        // each output release at most one in-order packet (its line rate).
        let mut w = 0usize;
        while let Some(wi) = self.occupied_intermediates.next_occupied_word(w) {
            let mut bits = self.occupied_intermediates.word(wi);
            while bits != 0 {
                let l = (wi << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let output = second_fabric_output_at(l, t, self.n);
                if let Some(packet) = self.intermediates[l].dequeue(output) {
                    if self.intermediates[l].queued_packets() == 0 {
                        self.occupied_intermediates.remove(l);
                    }
                    self.queued_intermediates -= 1;
                    self.queued_outputs += 1;
                    self.occupied_outputs.insert(output);
                    self.resequencers[output].receive(packet);
                }
            }
            w = wi + 1;
        }
        // A resequencer can be occupied and still release nothing: all of
        // its buffered packets may be waiting for an earlier sequence number.
        let mut w = 0usize;
        while let Some(wi) = self.occupied_outputs.next_occupied_word(w) {
            let mut bits = self.occupied_outputs.word(wi);
            while bits != 0 {
                let output = (wi << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if let Some(packet) = self.resequencers[output].release_one() {
                    debug_assert_eq!(packet.output(), output);
                    if self.resequencers[output].buffered_packets() == 0 {
                        self.occupied_outputs.remove(output);
                    }
                    self.queued_outputs -= 1;
                    self.departures += 1;
                    sink.deliver(DeliveredPacket::new(packet, slot));
                }
            }
            w = wi + 1;
        }
        // First fabric: full frames first, round-robin partial service
        // otherwise.
        let mut w = 0usize;
        while let Some(wi) = self.occupied_inputs.next_occupied_word(w) {
            let mut bits = self.occupied_inputs.word(wi);
            while bits != 0 {
                let i = (wi << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let connected = first_fabric_at(i, t, self.n);
                let input = &mut self.inputs[i];
                if input.in_service.is_none() && connected == 0 {
                    if let Some(frame) = input.ready_frames.pop_front() {
                        input.in_service = Some(FrameInService::new(frame));
                    }
                }
                let mut sent = None;
                if let Some(svc) = &mut input.in_service {
                    debug_assert_eq!(svc.next_port(), connected);
                    sent = Some(svc.serve_next());
                    if svc.finished() {
                        if let Some(done) = input.in_service.take() {
                            self.frame_pool.push(done.recycle());
                        }
                    }
                } else if let Some(mut packet) = input.pop_round_robin() {
                    packet.set_intermediate(connected);
                    packet.set_stripe_size(1);
                    sent = Some(packet);
                }
                if let Some(packet) = sent {
                    input.queued -= 1;
                    if input.queued == 0 {
                        self.occupied_inputs.remove(i);
                    }
                    self.queued_inputs -= 1;
                    self.queued_intermediates += 1;
                    self.occupied_intermediates.insert(connected);
                    self.intermediates[connected].receive(packet);
                }
            }
            w = wi + 1;
        }
    }
}

impl Switch for FoffSwitch {
    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> &'static str {
        "foff"
    }

    fn arrive(&mut self, packet: Packet) {
        debug_assert!(packet.input() < self.n && packet.output() < self.n);
        self.arrivals += 1;
        self.queued_inputs += 1;
        // The output resequencer needs to know the arrival order of each VOQ.
        self.resequencers[packet.output()].note_arrival(packet.input(), packet.voq_seq);
        let i = packet.input();
        let input = &mut self.inputs[i];
        let output = packet.output();
        input.queued += 1;
        self.occupied_inputs.insert(i);
        input.voqs[output].push(packet);
        if input.voqs[output].len() >= self.n {
            let mut frame = self.frame_pool.pop().unwrap_or_default();
            let formed = input.voqs[output].pop_full_frame_into(self.n, &mut frame);
            debug_assert!(formed);
            input.ready_frames.push_back(frame);
        }
    }

    fn step(&mut self, slot: u64, sink: &mut dyn DeliverySink) {
        let t = (slot % self.n as u64) as usize;
        self.step_at(slot, t, sink);
    }

    fn step_batch(&mut self, first_slot: u64, count: u32, sink: &mut dyn DeliverySink) {
        step_batch_rotating(self.n, first_slot, count, |slot, t| {
            // All three occupancy bitsets empty — the degenerate case of the
            // per-port check — means the switch holds nothing anywhere, so
            // stepping is a no-op and the rest of the batch can be elided.
            if self.occupied_inputs.is_empty()
                && self.occupied_intermediates.is_empty()
                && self.occupied_outputs.is_empty()
            {
                return false;
            }
            self.step_at(slot, t, sink);
            true
        });
    }

    fn stats(&self) -> SwitchStats {
        SwitchStats {
            queued_at_inputs: self.queued_inputs,
            queued_at_intermediates: self.queued_intermediates,
            queued_at_outputs: self.queued_outputs,
            total_arrivals: self.arrivals,
            total_departures: self.departures,
            total_dropped: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(input: usize, output: usize, seq: u64, slot: u64) -> Packet {
        Packet::new(input, output, seq, slot).with_voq_seq(seq)
    }

    #[test]
    fn partial_frames_are_served_without_waiting() {
        let n = 8;
        let mut sw = FoffSwitch::new(n);
        sw.arrive(pkt(0, 3, 0, 0));
        let mut delivered = Vec::new();
        for slot in 0..48 {
            sw.step(slot, &mut delivered);
        }
        assert_eq!(delivered.len(), 1, "FOFF must not wait for a full frame");
        assert_eq!(delivered[0].packet.output(), 3);
    }

    #[test]
    fn departures_are_in_voq_order_despite_internal_races() {
        let n = 4;
        let mut sw = FoffSwitch::new(n);
        let mut seqs = vec![0u64; n * n];
        let mut sent = 0u64;
        // A mix of loads so that partial and full frames interleave.
        for slot in 0..400u64 {
            for i in 0..n {
                let output = if slot % 3 == 0 { (i + 1) % n } else { i };
                let key = i * n + output;
                sw.arrive(pkt(i, output, seqs[key], slot));
                seqs[key] += 1;
                sent += 1;
            }
            sw.step(slot, &mut sprinklers_core::switch::NullSink);
        }
        let mut delivered = Vec::new();
        for slot in 400..4000u64 {
            sw.step(slot, &mut delivered);
        }
        let mut last: std::collections::HashMap<(usize, usize), u64> = Default::default();
        let mut count = sw.stats().total_departures;
        assert!(
            count >= sent * 9 / 10,
            "most packets should drain: {count}/{sent}"
        );
        for d in &delivered {
            let voq = d.packet.voq();
            if let Some(&prev) = last.get(&voq) {
                assert!(
                    d.packet.voq_seq > prev,
                    "reordered departure in VOQ {voq:?}: {} after {prev}",
                    d.packet.voq_seq
                );
            }
            last.insert(voq, d.packet.voq_seq);
        }
        count = 0;
        let _ = count;
    }

    #[test]
    fn one_departure_per_output_per_slot() {
        let n = 4;
        let mut sw = FoffSwitch::new(n);
        for k in 0..32u64 {
            sw.arrive(pkt((k % 4) as usize, 2, k / 4, 0));
        }
        let mut delivered = Vec::new();
        for slot in 0..200u64 {
            delivered.clear();
            sw.step(slot, &mut delivered);
            let to_two = delivered.iter().filter(|d| d.packet.output() == 2).count();
            assert!(to_two <= 1, "an output can only accept one packet per slot");
        }
    }

    /// The three occupancy bitsets and running counters must agree with
    /// brute-force scans throughout a random interleaving, including at a
    /// port count past the bitsets' 64-port word boundary.
    #[test]
    fn occupancy_bitsets_agree_with_brute_force_scans() {
        fn check(sw: &FoffSwitch, context: &str) {
            for i in 0..sw.n {
                assert_eq!(
                    sw.occupied_inputs.contains(i),
                    sw.inputs[i].queued > 0,
                    "{context}: input {i} bit diverged"
                );
                let rescan = sw.inputs[i].voqs.iter().map(FrameVoq::len).sum::<usize>()
                    + sw.inputs[i]
                        .ready_frames
                        .iter()
                        .map(Vec::len)
                        .sum::<usize>()
                    + sw.inputs[i]
                        .in_service
                        .as_ref()
                        .map_or(0, FrameInService::remaining);
                assert_eq!(sw.inputs[i].queued, rescan, "{context}: input {i} counter");
            }
            for l in 0..sw.n {
                assert_eq!(
                    sw.occupied_intermediates.contains(l),
                    sw.intermediates[l].queued_packets() > 0,
                    "{context}: intermediate {l} bit diverged"
                );
            }
            for j in 0..sw.n {
                assert_eq!(
                    sw.occupied_outputs.contains(j),
                    sw.resequencers[j].buffered_packets() > 0,
                    "{context}: output {j} bit diverged"
                );
            }
            assert_eq!(
                sw.queued_outputs,
                sw.resequencers
                    .iter()
                    .map(Resequencer::buffered_packets)
                    .sum::<usize>(),
                "{context}: output counter diverged"
            );
        }

        for n in [6usize, 65] {
            let mut sw = FoffSwitch::new(n);
            let mut seqs = vec![0u64; n * n];
            for slot in 0..(8 * n as u64) {
                for i in 0..n {
                    if !(i + slot as usize).is_multiple_of(3) {
                        let output = (i + 2 * slot as usize) % n;
                        let key = i * n + output;
                        sw.arrive(pkt(i, output, seqs[key], slot));
                        seqs[key] += 1;
                    }
                }
                sw.step(slot, &mut sprinklers_core::switch::NullSink);
                if slot % 7 == 0 {
                    check(&sw, &format!("n={n} slot={slot}"));
                }
            }
            for slot in (8 * n as u64)..(40 * n as u64) {
                sw.step(slot, &mut sprinklers_core::switch::NullSink);
            }
            check(&sw, &format!("n={n} post-drain"));
        }
    }

    #[test]
    fn conserves_packets() {
        let n = 8;
        let mut sw = FoffSwitch::new(n);
        let mut seqs = vec![0u64; n * n];
        let mut sent = 0u64;
        for slot in 0..200u64 {
            for i in 0..n {
                if (slot as usize + i).is_multiple_of(2) {
                    let output = (i + slot as usize) % n;
                    let key = i * n + output;
                    sw.arrive(pkt(i, output, seqs[key], slot));
                    seqs[key] += 1;
                    sent += 1;
                }
            }
            sw.step(slot, &mut sprinklers_core::switch::NullSink);
        }
        for slot in 200..4000u64 {
            sw.step(slot, &mut sprinklers_core::switch::NullSink);
        }
        assert_eq!(sw.stats().total_departures, sent);
        assert_eq!(sw.stats().total_queued(), 0);
    }
}
