//! Output-side resequencing buffers (used by FOFF).
//!
//! FOFF lets packets of incomplete frames race ahead of each other through
//! the switch, bounding — but not preventing — reordering.  Each output port
//! therefore keeps a resequencing buffer: packets are held until every
//! earlier packet of the same VOQ has departed, and the output releases at
//! most one packet per time slot (its line rate).

use sprinklers_core::packet::Packet;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// A per-output resequencer.
///
/// Packets of each VOQ must carry strictly increasing `voq_seq` values in
/// arrival order (the simulation harness guarantees this); the resequencer
/// releases them in exactly that order.
#[derive(Debug, Clone, Default)]
pub struct Resequencer {
    /// Buffered out-of-order packets per input, keyed by sequence number.
    pending: HashMap<usize, BTreeMap<u64, Packet>>,
    /// Next expected sequence per input (populated lazily from the arrival
    /// log the switch feeds us).
    expected: HashMap<usize, VecDeque<u64>>,
    /// Packets ready to depart, in the order they became ready.
    ready: VecDeque<Packet>,
    buffered: usize,
}

impl Resequencer {
    /// Create an empty resequencer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that a packet with this `(input, voq_seq)` was accepted by the
    /// switch, so the resequencer knows the order in which to release packets
    /// of that VOQ.  Must be called in arrival order.
    pub fn note_arrival(&mut self, input: usize, voq_seq: u64) {
        self.expected.entry(input).or_default().push_back(voq_seq);
    }

    /// Accept a (possibly out-of-order) packet from the second fabric.
    pub fn receive(&mut self, packet: Packet) {
        if packet.is_padding {
            // Padding never reaches a FOFF resequencer, but be permissive.
            self.ready.push_back(packet);
            return;
        }
        let input = packet.input;
        self.pending
            .entry(input)
            .or_default()
            .insert(packet.voq_seq, packet);
        self.buffered += 1;
        self.promote(input);
    }

    /// Release at most one packet (the output line transmits one packet per
    /// slot).
    pub fn release_one(&mut self) -> Option<Packet> {
        self.ready.pop_front()
    }

    /// Packets currently buffered (pending plus ready).
    pub fn buffered_packets(&self) -> usize {
        self.buffered + self.ready.len()
    }

    fn promote(&mut self, input: usize) {
        let Some(expected) = self.expected.get_mut(&input) else {
            return;
        };
        let Some(pending) = self.pending.get_mut(&input) else {
            return;
        };
        while let Some(&next_seq) = expected.front() {
            if let Some(packet) = pending.remove(&next_seq) {
                expected.pop_front();
                self.buffered -= 1;
                self.ready.push_back(packet);
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(input: usize, seq: u64) -> Packet {
        Packet::new(input, 0, seq, 0).with_voq_seq(seq)
    }

    #[test]
    fn in_order_packets_flow_straight_through() {
        let mut r = Resequencer::new();
        for seq in 0..5 {
            r.note_arrival(0, seq);
        }
        for seq in 0..5 {
            r.receive(pkt(0, seq));
            assert_eq!(r.release_one().unwrap().voq_seq, seq);
        }
        assert_eq!(r.buffered_packets(), 0);
    }

    #[test]
    fn out_of_order_packets_are_held_back() {
        let mut r = Resequencer::new();
        for seq in 0..3 {
            r.note_arrival(4, seq);
        }
        r.receive(pkt(4, 1));
        r.receive(pkt(4, 2));
        assert!(r.release_one().is_none(), "seq 0 has not arrived yet");
        assert_eq!(r.buffered_packets(), 2);
        r.receive(pkt(4, 0));
        assert_eq!(r.release_one().unwrap().voq_seq, 0);
        assert_eq!(r.release_one().unwrap().voq_seq, 1);
        assert_eq!(r.release_one().unwrap().voq_seq, 2);
        assert!(r.release_one().is_none());
    }

    #[test]
    fn one_release_per_call_models_the_line_rate() {
        let mut r = Resequencer::new();
        for seq in 0..4 {
            r.note_arrival(1, seq);
        }
        for seq in [3u64, 2, 1, 0] {
            r.receive(pkt(1, seq));
        }
        // Everything became ready at once, but departures happen one per slot.
        let mut released = Vec::new();
        while let Some(p) = r.release_one() {
            released.push(p.voq_seq);
        }
        assert_eq!(released, vec![0, 1, 2, 3]);
    }

    #[test]
    fn inputs_are_independent() {
        let mut r = Resequencer::new();
        r.note_arrival(0, 0);
        r.note_arrival(1, 0);
        r.receive(pkt(1, 0));
        assert_eq!(r.release_one().unwrap().input, 1);
    }

    #[test]
    fn non_contiguous_sequence_numbers_are_handled() {
        // FOFF only needs relative order; the harness's voq_seq values are
        // contiguous, but the resequencer must not assume that.
        let mut r = Resequencer::new();
        r.note_arrival(0, 10);
        r.note_arrival(0, 20);
        r.receive(pkt(0, 20));
        assert!(r.release_one().is_none());
        r.receive(pkt(0, 10));
        assert_eq!(r.release_one().unwrap().voq_seq, 10);
        assert_eq!(r.release_one().unwrap().voq_seq, 20);
    }
}
