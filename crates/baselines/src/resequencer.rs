//! Output-side resequencing buffers (used by FOFF).
//!
//! FOFF lets packets of incomplete frames race ahead of each other through
//! the switch, bounding — but not preventing — reordering.  Each output port
//! therefore keeps a resequencing buffer: packets are held until every
//! earlier packet of the same VOQ has departed, and the output releases at
//! most one packet per time slot (its line rate).
//!
//! The buffer is deliberately allocation-free in steady state: per-input
//! state lives in flat `Vec`s sized at construction (an output's resequencer
//! only ever sees packets from the switch's `N` inputs), the out-of-order
//! packets of each input sit in a small sorted vector rather than a
//! node-allocating `BTreeMap`, and every container keeps its capacity across
//! the fill/drain cycle.  FOFF's per-packet `receive` therefore stops heap
//! allocating once the buffers have warmed up, which is what lets the
//! batched `step_batch` path run allocation-free end to end.

use sprinklers_core::packet::Packet;
use std::collections::VecDeque;

/// A per-output resequencer of an `n`-input switch.
///
/// Packets of each VOQ must carry strictly increasing `voq_seq` values in
/// arrival order (the simulation harness guarantees this); the resequencer
/// releases them in exactly that order.
#[derive(Debug, Clone)]
pub struct Resequencer {
    /// Buffered out-of-order packets per input, sorted by **descending**
    /// `voq_seq` so the next candidate (the smallest) pops from the tail.
    pending: Vec<Vec<Packet>>,
    /// Next expected sequence numbers per input, in release order (populated
    /// from the arrival log the switch feeds us).
    expected: Vec<VecDeque<u64>>,
    /// Packets ready to depart, in the order they became ready.
    ready: VecDeque<Packet>,
    buffered: usize,
}

impl Resequencer {
    /// Create an empty resequencer for an `n`-input switch.
    ///
    /// The per-input out-of-order buffers are pre-sized to `2n`: FOFF's
    /// uncommitted packets race across at most the `n` intermediate paths,
    /// so per-input displacement beyond that is rare and the usual fill /
    /// drain cycle never reallocates.
    pub fn new(n: usize) -> Self {
        Resequencer {
            pending: (0..n).map(|_| Vec::with_capacity(2 * n)).collect(),
            expected: (0..n).map(|_| VecDeque::with_capacity(2 * n)).collect(),
            // A single promote can release a whole blocked backlog at once,
            // so the ready line-rate queue gets the same headroom.
            ready: VecDeque::with_capacity(4 * n),
            buffered: 0,
        }
    }

    /// Record that a packet with this `(input, voq_seq)` was accepted by the
    /// switch, so the resequencer knows the order in which to release packets
    /// of that VOQ.  Must be called in arrival order.
    pub fn note_arrival(&mut self, input: usize, voq_seq: u64) {
        self.expected[input].push_back(voq_seq);
    }

    /// Accept a (possibly out-of-order) packet from the second fabric.
    // lint: hot-path
    pub fn receive(&mut self, packet: Packet) {
        if packet.is_padding() {
            // Padding never reaches a FOFF resequencer, but be permissive.
            self.ready.push_back(packet);
            return;
        }
        let input = packet.input();
        let pending = &mut self.pending[input];
        let pos = pending.partition_point(|p| p.voq_seq > packet.voq_seq);
        pending.insert(pos, packet);
        self.buffered += 1;
        self.promote(input);
    }

    /// Release at most one packet (the output line transmits one packet per
    /// slot).
    // lint: hot-path
    pub fn release_one(&mut self) -> Option<Packet> {
        self.ready.pop_front()
    }

    /// Packets currently buffered (pending plus ready).
    pub fn buffered_packets(&self) -> usize {
        self.buffered + self.ready.len()
    }

    // lint: hot-path
    fn promote(&mut self, input: usize) {
        let expected = &mut self.expected[input];
        let pending = &mut self.pending[input];
        while let (Some(&next_seq), Some(candidate)) = (expected.front(), pending.last()) {
            if candidate.voq_seq != next_seq {
                break;
            }
            let Some(packet) = pending.pop() else { break };
            expected.pop_front();
            self.buffered -= 1;
            self.ready.push_back(packet);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(input: usize, seq: u64) -> Packet {
        Packet::new(input, 0, seq, 0).with_voq_seq(seq)
    }

    #[test]
    fn in_order_packets_flow_straight_through() {
        let mut r = Resequencer::new(4);
        for seq in 0..5 {
            r.note_arrival(0, seq);
        }
        for seq in 0..5 {
            r.receive(pkt(0, seq));
            assert_eq!(r.release_one().unwrap().voq_seq, seq);
        }
        assert_eq!(r.buffered_packets(), 0);
    }

    #[test]
    fn out_of_order_packets_are_held_back() {
        let mut r = Resequencer::new(8);
        for seq in 0..3 {
            r.note_arrival(4, seq);
        }
        r.receive(pkt(4, 1));
        r.receive(pkt(4, 2));
        assert!(r.release_one().is_none(), "seq 0 has not arrived yet");
        assert_eq!(r.buffered_packets(), 2);
        r.receive(pkt(4, 0));
        assert_eq!(r.release_one().unwrap().voq_seq, 0);
        assert_eq!(r.release_one().unwrap().voq_seq, 1);
        assert_eq!(r.release_one().unwrap().voq_seq, 2);
        assert!(r.release_one().is_none());
    }

    #[test]
    fn one_release_per_call_models_the_line_rate() {
        let mut r = Resequencer::new(2);
        for seq in 0..4 {
            r.note_arrival(1, seq);
        }
        for seq in [3u64, 2, 1, 0] {
            r.receive(pkt(1, seq));
        }
        // Everything became ready at once, but departures happen one per slot.
        let mut released = Vec::new();
        while let Some(p) = r.release_one() {
            released.push(p.voq_seq);
        }
        assert_eq!(released, vec![0, 1, 2, 3]);
    }

    #[test]
    fn inputs_are_independent() {
        let mut r = Resequencer::new(2);
        r.note_arrival(0, 0);
        r.note_arrival(1, 0);
        r.receive(pkt(1, 0));
        assert_eq!(r.release_one().unwrap().input(), 1);
    }

    #[test]
    fn non_contiguous_sequence_numbers_are_handled() {
        // FOFF only needs relative order; the harness's voq_seq values are
        // contiguous, but the resequencer must not assume that.
        let mut r = Resequencer::new(1);
        r.note_arrival(0, 10);
        r.note_arrival(0, 20);
        r.receive(pkt(0, 20));
        assert!(r.release_one().is_none());
        r.receive(pkt(0, 10));
        assert_eq!(r.release_one().unwrap().voq_seq, 10);
        assert_eq!(r.release_one().unwrap().voq_seq, 20);
    }

    #[test]
    fn steady_state_cycle_retains_capacity() {
        // Fill/drain the same input repeatedly: the internal vectors must
        // reuse their capacity rather than reallocating each cycle.
        let mut r = Resequencer::new(2);
        let mut seq = 0u64;
        for _ in 0..100 {
            for k in 0..8 {
                r.note_arrival(0, seq + k);
            }
            for k in (0..8).rev() {
                r.receive(pkt(0, seq + k));
            }
            seq += 8;
            let mut got = 0;
            while r.release_one().is_some() {
                got += 1;
            }
            assert_eq!(got, 8);
            assert_eq!(r.buffered_packets(), 0);
        }
    }
}
