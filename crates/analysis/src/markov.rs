//! Expected delay at the intermediate stage (§5, Figure 5).
//!
//! The paper models the queue at an intermediate port, under worst-case
//! burstiness, as a discrete-time Markov chain observed once per cycle
//! (N slots): in each cycle the queue receives a batch of N packets with
//! probability `ρ/N` (and nothing otherwise) and serves exactly one packet.
//! The expected stationary queue length — which is also the expected duration
//! of the clearance phase used when stripe sizes are re-designed — is what
//! Figure 5 plots against the switch size N at ρ = 0.9.
//!
//! Two solvers are provided:
//!
//! * [`expected_queue_length`] — the closed form
//!   `E[Q] = ρ(N−1) / (2(1−ρ))`, obtained from the stationary first and
//!   second moments of the reflected random walk.
//! * [`IntermediateDelayModel`] — a numerical stationary-distribution solver
//!   for the same chain (used to validate the closed form and to expose the
//!   full distribution, e.g. for tail percentiles).

use serde::{Deserialize, Serialize};

/// Closed-form expected stationary queue length (in packets, equivalently in
/// service periods since the service rate is one packet per period):
/// `E[Q] = ρ(N−1) / (2(1−ρ))`.
pub fn expected_queue_length(n: usize, rho: f64) -> f64 {
    assert!(n >= 1);
    assert!(
        (0.0..1.0).contains(&rho),
        "load must be in [0, 1), got {rho}"
    );
    rho * (n as f64 - 1.0) / (2.0 * (1.0 - rho))
}

/// Probability that the queue is empty at a cycle boundary:
/// `P(Q = 0) = (1 − ρ) / (1 − ρ/N)`.
pub fn empty_probability(n: usize, rho: f64) -> f64 {
    (1.0 - rho) / (1.0 - rho / n as f64)
}

/// The series plotted in Figure 5: expected delay (in periods) versus switch
/// size, at fixed load.
pub fn figure5_series(rho: f64, sizes: &[usize]) -> Vec<(usize, f64)> {
    sizes
        .iter()
        .map(|&n| (n, expected_queue_length(n, rho)))
        .collect()
}

/// Numerical model of the intermediate-stage queue-length Markov chain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IntermediateDelayModel {
    n: usize,
    rho: f64,
    /// Stationary distribution over queue lengths `0..pi.len()` (truncated).
    pi: Vec<f64>,
    /// Probability mass lost to truncation (diagnostic; should be tiny).
    truncated_mass: f64,
}

impl IntermediateDelayModel {
    /// Solve the stationary distribution of the chain for an `n`-port switch
    /// at load `rho`, truncating the state space once the remaining tail mass
    /// is negligible.
    ///
    /// The chain moves down by exactly one per cycle (skip-free to the left),
    /// so the stationary distribution satisfies the forward recursion
    /// `π_{j+1} = (π_j − p·π_{j−N+1}·[j ≥ N−1]) / (1 − p)` for `j ≥ 1` and
    /// `π_1 = π_0 · p / (1 − p)`, which we run from an unnormalized `π_0 = 1`
    /// and then normalize.
    pub fn solve(n: usize, rho: f64) -> Self {
        assert!(n >= 2);
        assert!((0.0..1.0).contains(&rho));
        let p = rho / n as f64;
        let q = 1.0 - p;
        // Generous truncation: the mean is ~ρ(N−1)/(2(1−ρ)); keep many
        // multiples of it plus a floor for tiny means.
        let mean = expected_queue_length(n, rho);
        let cap = ((mean * 40.0) as usize).max(50 * n) + 2 * n;
        let mut pi = vec![0.0f64; cap];
        pi[0] = 1.0;
        if cap > 1 {
            pi[1] = pi[0] * p / q;
        }
        for j in 1..cap - 1 {
            let feed = if j >= n - 1 { p * pi[j - (n - 1)] } else { 0.0 };
            let next = (pi[j] - feed) / q;
            pi[j + 1] = next.max(0.0);
        }
        let sum: f64 = pi.iter().sum();
        for v in &mut pi {
            *v /= sum;
        }
        // Estimate the truncated mass from the size of the last entries.
        let tail: f64 = pi[cap.saturating_sub(n)..].iter().sum();
        IntermediateDelayModel {
            n,
            rho,
            pi,
            truncated_mass: tail,
        }
    }

    /// Switch size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Offered load.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Stationary probability of queue length `q` (0 beyond the truncation).
    pub fn prob(&self, q: usize) -> f64 {
        self.pi.get(q).copied().unwrap_or(0.0)
    }

    /// Expected stationary queue length.
    pub fn mean_queue_length(&self) -> f64 {
        self.pi.iter().enumerate().map(|(q, &p)| q as f64 * p).sum()
    }

    /// Smallest queue length `q` such that `P(Q ≤ q) ≥ percentile`.
    pub fn percentile(&self, percentile: f64) -> usize {
        assert!((0.0..=1.0).contains(&percentile));
        let mut acc = 0.0;
        for (q, &p) in self.pi.iter().enumerate() {
            acc += p;
            if acc >= percentile {
                return q;
            }
        }
        self.pi.len()
    }

    /// Probability mass beyond the truncation point (diagnostic).
    pub fn truncated_mass(&self) -> f64 {
        self.truncated_mass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_matches_figure5_magnitude() {
        // Figure 5: at ρ = 0.9 the delay grows linearly in N, reaching roughly
        // 4000–4500 periods at N = 1000.
        let d = expected_queue_length(1000, 0.9);
        assert!(
            d > 3500.0 && d < 5000.0,
            "delay {d} out of Figure 5's range"
        );
        // Linearity in N: E[Q] ∝ (N − 1).
        let d2 = expected_queue_length(500, 0.9);
        assert!((d / d2 - 999.0 / 499.0).abs() < 1e-9);
    }

    #[test]
    fn closed_form_is_linear_in_n() {
        let s = figure5_series(0.9, &[8, 16, 32, 64, 128, 256, 512, 1024]);
        for w in s.windows(2) {
            let (n1, d1) = w[0];
            let (n2, d2) = w[1];
            let slope1 = d1 / (n1 as f64 - 1.0);
            let slope2 = d2 / (n2 as f64 - 1.0);
            assert!(
                (slope1 - slope2).abs() < 1e-9,
                "the delay/(N−1) ratio must be constant"
            );
        }
    }

    #[test]
    fn empty_probability_is_a_probability() {
        for n in [2usize, 32, 1024] {
            for rho in [0.1, 0.5, 0.9, 0.99] {
                let p0 = empty_probability(n, rho);
                assert!(p0 > 0.0 && p0 <= 1.0);
            }
        }
    }

    #[test]
    fn numerical_solver_matches_closed_form_small_n() {
        for (n, rho) in [(4usize, 0.5f64), (8, 0.7), (16, 0.8), (32, 0.9), (64, 0.6)] {
            let model = IntermediateDelayModel::solve(n, rho);
            assert!(model.truncated_mass() < 1e-6, "truncation too aggressive");
            let numeric = model.mean_queue_length();
            let closed = expected_queue_length(n, rho);
            let rel = (numeric - closed).abs() / closed.max(1.0);
            assert!(
                rel < 0.01,
                "n = {n}, rho = {rho}: numeric {numeric} vs closed form {closed}"
            );
        }
    }

    #[test]
    fn numerical_empty_probability_matches_closed_form() {
        let model = IntermediateDelayModel::solve(16, 0.8);
        assert!((model.prob(0) - empty_probability(16, 0.8)).abs() < 1e-3);
    }

    #[test]
    fn stationary_distribution_sums_to_one() {
        let model = IntermediateDelayModel::solve(32, 0.85);
        let total: f64 = (0..model.pi.len()).map(|q| model.prob(q)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_are_monotone() {
        let model = IntermediateDelayModel::solve(16, 0.9);
        let p50 = model.percentile(0.5);
        let p90 = model.percentile(0.9);
        let p99 = model.percentile(0.99);
        assert!(p50 <= p90 && p90 <= p99);
        assert!(p99 > 0);
    }

    #[test]
    fn zero_load_has_empty_queue() {
        assert_eq!(expected_queue_length(64, 0.0), 0.0);
        let model = IntermediateDelayModel::solve(8, 0.0);
        assert!((model.prob(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn higher_load_means_longer_queue() {
        let lo = expected_queue_length(64, 0.5);
        let hi = expected_queue_length(64, 0.95);
        assert!(hi > lo * 5.0);
    }

    #[test]
    #[should_panic]
    fn rejects_load_of_one() {
        let _ = expected_queue_length(64, 1.0);
    }
}
