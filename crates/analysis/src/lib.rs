//! Analytical models from the Sprinklers paper (no simulation involved).
//!
//! * [`chernoff`] — the worst-case large-deviation (Chernoff) bound on the
//!   probability that a single input-port → intermediate-port queue is
//!   overloaded (Theorem 2 and Table 1 of the paper).
//! * [`theorem1`] — the zero-overload load threshold `2/3 + 1/(3N²)`
//!   (Theorem 1) and the worst-case rate vector that attains it.
//! * [`markov`] — the batch-arrival Markov chain that models the expected
//!   queue length (and hence clearance delay) at the intermediate stage under
//!   maximum burstiness (§5, Figure 5).
//! * [`optimize`] — the small numerical optimizer (golden-section search) used
//!   to minimize the Chernoff exponent over θ.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chernoff;
pub mod markov;
pub mod optimize;
pub mod theorem1;

pub use chernoff::{overload_bound, switch_wide_bound, OverloadBound};
pub use markov::{expected_queue_length, IntermediateDelayModel};
pub use theorem1::{worst_case_rate_vector, zero_overload_threshold};
