//! Worst-case large-deviation (Chernoff) bound on queue overload — Theorem 2
//! and Table 1 of the paper.
//!
//! Setting: fix input port 1 and intermediate port 1, and consider the queue
//! of packets at that input which must be switched through that intermediate
//! port.  Its service rate is exactly `1/N`.  The paper bounds the worst-case
//! probability (over the random permutation that places stripe intervals, and
//! over *all* ways an admissible load `ρ` can be split across the N VOQs) that
//! the arrival rate to this queue exceeds `1/N`:
//!
//! ```text
//! sup_{|r| = ρ} P(X(r) ≥ 1/N)
//!     ≤ inf_{θ>0} exp(−θ/N) · (h(p*(θα), θα))^{N/2} · exp(θρ/N),      α = 1/N²
//! ```
//!
//! with `h(p, a) = p·e^{a(1−p)} + (1−p)·e^{−ap}` and
//! `p*(a) = (e^a − 1 − a)/(a·e^a − a)` the maximizer of `h(·, a)`.
//!
//! Substituting `θ = a·N²` shows the log-bound is `N·g(a)` with
//! `g(a) = a(ρ−1) + ½·ln h(p*(a), a)`, so the bound has the form
//! `exp(N · C(ρ))` where `C(ρ) = min_a g(a)` depends only on the load.  All
//! computations here are done in log-space (the bounds reach 10⁻⁶⁰ and below
//! for large N, far beyond what the paper's Table 1 — which visibly saturates
//! around 10⁻²⁹/10⁻³⁰ — could represent with its non-log-space numerics).

use crate::optimize::golden_section_min;
use serde::{Deserialize, Serialize};

/// `h(p, a) = p·e^{a(1−p)} + (1−p)·e^{−ap}` — the MGF-like function of
/// Theorem 2 (the MGF of a centered Bernoulli(p) scaled by `a`).
pub fn h(p: f64, a: f64) -> f64 {
    p * (a * (1.0 - p)).exp() + (1.0 - p) * (-a * p).exp()
}

/// `p*(a) = (e^a − 1 − a) / (a·e^a − a)` — the maximizer of `h(·, a)`.
///
/// For very small `a` the expression is evaluated via its Taylor limit 1/2 to
/// avoid catastrophic cancellation.
pub fn p_star(a: f64) -> f64 {
    if a.abs() < 1e-6 {
        // (e^a − 1 − a)/(a e^a − a) = (a²/2 + a³/6 + …)/(a² + a³/2 + …) → 1/2 − a/12 + O(a²)
        return 0.5 - a / 12.0;
    }
    let ea = a.exp();
    (ea - 1.0 - a) / (a * ea - a)
}

/// The per-port log-exponent `g(a) = a(ρ−1) + ½·ln h(p*(a), a)`.
pub fn log_exponent(a: f64, rho: f64) -> f64 {
    a * (rho - 1.0) + 0.5 * h(p_star(a), a).ln()
}

/// `C(ρ) = min_{a>0} g(a)`: the optimized per-port exponent, so that the
/// overload probability bound equals `exp(N · C(ρ))`.
///
/// Returns `(a*, C(ρ))`.
pub fn optimal_exponent(rho: f64) -> (f64, f64) {
    assert!(rho > 0.0 && rho < 1.0, "load must be in (0, 1), got {rho}");
    // g is convex in a and its minimizer lies well below 200 for any load of
    // interest (a* ≈ 0.24 at ρ = 0.97, growing as ρ decreases; at ρ = 0.70 it
    // is still below 10).  Use a generous bracket.
    golden_section_min(|a| log_exponent(a, rho), 1e-9, 200.0, 1e-10)
}

/// The result of evaluating the Theorem 2 bound for one `(N, ρ)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverloadBound {
    /// Switch size.
    pub n: usize,
    /// Input load.
    pub rho: f64,
    /// Optimal `a = θ·α` found by the minimization.
    pub optimal_a: f64,
    /// Natural log of the single-queue overload probability bound.
    pub log_bound: f64,
    /// The single-queue bound itself (0.0 if it underflows `f64`).
    pub bound: f64,
    /// Natural log of the switch-wide union bound over all `2N²` queues.
    pub log_switch_wide: f64,
    /// The switch-wide union bound (clamped to 1.0 from above).
    pub switch_wide: f64,
}

/// Evaluate the Theorem 2 Chernoff bound on
/// `sup_{|r| = ρ} P(X(r) ≥ 1/N)` for a single queue.
///
/// # Panics
///
/// Panics if `n` is not a power of two or `rho` is outside `(0, 1)`.
pub fn overload_bound(n: usize, rho: f64) -> OverloadBound {
    assert!(
        n.is_power_of_two() && n >= 2,
        "switch size must be a power of two ≥ 2"
    );
    let (a, c) = optimal_exponent(rho);
    let log_bound = (n as f64) * c;
    // Union bound over the N² input→intermediate queues and the N²
    // intermediate→output queues (§4.1 of the paper).
    let log_switch_wide = log_bound + (2.0 * (n as f64) * (n as f64)).ln();
    OverloadBound {
        n,
        rho,
        optimal_a: a,
        log_bound,
        bound: log_bound.exp(),
        log_switch_wide,
        switch_wide: log_switch_wide.exp().min(1.0),
    }
}

/// The switch-wide union bound: `2N²` times the single-queue bound, clamped
/// to 1 (the probability that *any* of the `2N²` queues in the switch is
/// overloaded).
pub fn switch_wide_bound(n: usize, rho: f64) -> f64 {
    overload_bound(n, rho).switch_wide
}

/// Reproduce Table 1 of the paper: the single-queue overload bound for
/// `ρ ∈ {0.90, …, 0.97}` and `N ∈ {1024, 2048, 4096}`.
pub fn table1() -> Vec<OverloadBound> {
    let loads = [0.90, 0.91, 0.92, 0.93, 0.94, 0.95, 0.96, 0.97];
    let sizes = [1024usize, 2048, 4096];
    let mut rows = Vec::new();
    for &rho in &loads {
        for &n in &sizes {
            rows.push(overload_bound(n, rho));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Relative agreement within a small factor — the paper reports three
    /// significant digits.
    fn close(log_a: f64, b_paper: f64, factor: f64) {
        let log_b = b_paper.ln();
        assert!(
            (log_a - log_b).abs() < factor.ln(),
            "bound e^{log_a} vs paper {b_paper:e} differ by more than a factor of {factor}"
        );
    }

    #[test]
    fn h_at_zero_angle_is_one() {
        for p in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert!((h(p, 0.0) - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn p_star_maximizes_h() {
        for a in [0.1, 0.5, 1.0, 2.0, 5.0] {
            let p = p_star(a);
            let hp = h(p, a);
            for q in [p - 0.01, p + 0.01, 0.1, 0.9] {
                if (0.0..=1.0).contains(&q) {
                    assert!(
                        hp >= h(q, a) - 1e-9,
                        "h(p*, {a}) = {hp} should dominate h({q}, {a}) = {}",
                        h(q, a)
                    );
                }
            }
        }
    }

    #[test]
    fn p_star_is_smooth_near_zero() {
        // The Taylor branch and the direct branch must agree around the
        // crossover point.
        let a: f64 = 1.1e-6;
        let direct = (a.exp() - 1.0 - a) / (a * a.exp() - a);
        assert!((p_star(a) - direct).abs() < 1e-6);
        assert!((p_star(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn exponent_is_negative_for_admissible_loads() {
        for rho in [0.90, 0.93, 0.97, 0.99] {
            let (_, c) = optimal_exponent(rho);
            assert!(c < 0.0, "C({rho}) = {c} should be negative");
        }
    }

    #[test]
    fn bound_decreases_with_switch_size() {
        let b1 = overload_bound(1024, 0.95);
        let b2 = overload_bound(2048, 0.95);
        let b3 = overload_bound(4096, 0.95);
        assert!(b2.log_bound < b1.log_bound);
        assert!(b3.log_bound < b2.log_bound);
    }

    #[test]
    fn bound_increases_with_load() {
        let lo = overload_bound(1024, 0.90);
        let hi = overload_bound(1024, 0.97);
        assert!(hi.log_bound > lo.log_bound);
    }

    #[test]
    fn matches_paper_table1_n1024() {
        // Paper values (Table 1), N = 1024.  The paper prints three
        // significant digits; allow a 15% factor.
        close(overload_bound(1024, 0.90).log_bound, 1.21e-18, 1.5);
        close(overload_bound(1024, 0.91).log_bound, 3.06e-15, 1.15);
        close(overload_bound(1024, 0.92).log_bound, 3.54e-12, 1.15);
        close(overload_bound(1024, 0.93).log_bound, 1.76e-9, 1.15);
        close(overload_bound(1024, 0.94).log_bound, 3.76e-7, 1.15);
        close(overload_bound(1024, 0.95).log_bound, 3.50e-5, 1.15);
        close(overload_bound(1024, 0.96).log_bound, 1.41e-3, 1.15);
        close(overload_bound(1024, 0.97).log_bound, 2.50e-2, 1.15);
    }

    #[test]
    fn matches_paper_table1_n2048_unsaturated_entries() {
        // The paper's own numerics saturate around 1e-29/1e-30 for the
        // smallest entries; compare only the entries above that floor.
        close(overload_bound(2048, 0.92).log_bound, 1.26e-23, 1.15);
        close(overload_bound(2048, 0.93).log_bound, 3.09e-18, 1.15);
        close(overload_bound(2048, 0.94).log_bound, 1.42e-13, 1.15);
        close(overload_bound(2048, 0.95).log_bound, 1.22e-9, 1.15);
        close(overload_bound(2048, 0.96).log_bound, 1.99e-6, 1.15);
        close(overload_bound(2048, 0.97).log_bound, 6.24e-4, 1.15);
    }

    #[test]
    fn matches_paper_table1_n4096_unsaturated_entries() {
        close(overload_bound(4096, 0.95).log_bound, 1.48e-18, 1.15);
        close(overload_bound(4096, 0.96).log_bound, 3.97e-12, 1.15);
        close(overload_bound(4096, 0.97).log_bound, 3.90e-7, 1.15);
    }

    #[test]
    fn paper_example_switch_wide_bound() {
        // §4.1: for N = 2048 and ρ = 0.93 the paper quotes a switch-wide bound
        // of 1.30e-11.  (The text says "2N² times" the single-queue bound, but
        // 1.30e-11 is N² × 3.09e-18; our implementation follows the text and
        // multiplies by 2N², so we allow a factor-of-~2 difference here.)
        let b = overload_bound(2048, 0.93);
        close(b.log_switch_wide, 1.30e-11, 2.3);
    }

    #[test]
    fn log_bound_scales_linearly_in_n() {
        // bound = exp(N · C(ρ)): doubling N doubles the log-bound.
        let b1 = overload_bound(1024, 0.94);
        let b2 = overload_bound(2048, 0.94);
        assert!((b2.log_bound / b1.log_bound - 2.0).abs() < 1e-6);
    }

    #[test]
    fn table1_has_24_rows() {
        let t = table1();
        assert_eq!(t.len(), 24);
        assert!(t.iter().all(|row| row.log_bound < 0.0));
    }

    #[test]
    #[should_panic]
    fn rejects_load_of_one() {
        let _ = overload_bound(1024, 1.0);
    }

    #[test]
    #[should_panic]
    fn rejects_non_power_of_two_switch() {
        let _ = overload_bound(1000, 0.9);
    }
}
