//! Theorem 1: the zero-overload load threshold.
//!
//! Theorem 1 of the paper states that the queue of packets at an input port
//! destined to a particular intermediate port can never be overloaded —
//! `X(r) < 1/N` with probability 1 — as long as the total load on the input
//! port satisfies `|r| < 2/3 + 1/(3N²)`, *regardless* of how that load is
//! split across the N VOQs and of which permutation places their stripe
//! intervals.  The proof constructs the cheapest rate vector that can overload
//! the queue; this module reproduces both the threshold and that worst-case
//! construction, which the tests then verify numerically.

use serde::{Deserialize, Serialize};

/// The threshold of Theorem 1: `2/3 + 1/(3N²)`.
pub fn zero_overload_threshold(n: usize) -> f64 {
    let n = n as f64;
    2.0 / 3.0 + 1.0 / (3.0 * n * n)
}

/// The stripe size rule `F(r)` (duplicated here so the analysis crate stays
/// independent of the switch implementation; the two are cross-checked in the
/// integration tests).
pub fn stripe_size(rate: f64, n: usize) -> usize {
    if rate <= 0.0 {
        return 1;
    }
    let scaled = rate * (n as f64) * (n as f64);
    if scaled <= 1.0 {
        return 1;
    }
    let mut size = 1usize;
    while (size as f64) < scaled && size < n {
        size *= 2;
    }
    size.min(n)
}

/// Arrival rate contributed to the tagged queue (input port → intermediate
/// port 1, in the paper's 1-indexed notation) by a rate assignment.
///
/// `rates_by_position[k]` is the rate of the VOQ whose primary intermediate
/// port is at distance `k` from the tagged intermediate port, for
/// `k = 0, …, N−1` (the paper's `ℓ = k + 1`).  That VOQ contributes its
/// load-per-share `r/F(r)` to the tagged queue iff its stripe interval covers
/// the tagged port, i.e. iff `F(r) ≥ ℓ = k + 1`.
pub fn queue_arrival_rate(rates_by_position: &[f64], n: usize) -> f64 {
    assert_eq!(rates_by_position.len(), n);
    rates_by_position
        .iter()
        .enumerate()
        .map(|(k, &r)| {
            let f = stripe_size(r, n);
            if f > k {
                r / f as f64
            } else {
                0.0
            }
        })
        .sum()
}

/// The worst-case rate vector constructed in the proof of Theorem 1: the
/// cheapest (minimum total load) split of traffic that drives the tagged
/// queue's arrival rate up to exactly `1/N`.
///
/// Position `k` (0-indexed; the paper's `ℓ = k+1`) gets rate
/// `2^⌈log₂(k+1)⌉ / N²` for `ℓ ≤ N/2`, position `N/2` gets rate `1/2`, and the
/// rest get 0.  Its total load is exactly the Theorem 1 threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorstCaseRates {
    /// Rates indexed by distance from the tagged intermediate port.
    pub rates: Vec<f64>,
}

impl WorstCaseRates {
    /// Total offered load `|r|`.
    pub fn total_load(&self) -> f64 {
        self.rates.iter().sum()
    }

    /// The arrival rate the tagged queue sees under this assignment.
    pub fn queue_rate(&self) -> f64 {
        queue_arrival_rate(&self.rates, self.rates.len())
    }
}

/// Build the worst-case rate vector for an `n`-port switch.
pub fn worst_case_rate_vector(n: usize) -> WorstCaseRates {
    assert!(n.is_power_of_two() && n >= 4);
    let n2 = (n * n) as f64;
    let mut rates = vec![0.0; n];
    for (k, rate) in rates.iter_mut().enumerate().take(n / 2) {
        let size = (k + 1).next_power_of_two();
        *rate = size as f64 / n2;
    }
    rates[n / 2] = 0.5;
    WorstCaseRates { rates }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn threshold_matches_formula() {
        assert!((zero_overload_threshold(8) - (2.0 / 3.0 + 1.0 / 192.0)).abs() < 1e-15);
        assert!((zero_overload_threshold(1024) - 2.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn worst_case_total_load_equals_threshold() {
        for n in [4usize, 8, 16, 64, 256, 1024] {
            let wc = worst_case_rate_vector(n);
            let expected = zero_overload_threshold(n);
            assert!(
                (wc.total_load() - expected).abs() < 1e-12,
                "n = {n}: {} vs {expected}",
                wc.total_load()
            );
        }
    }

    #[test]
    fn worst_case_queue_rate_is_exactly_one_over_n() {
        for n in [4usize, 8, 16, 64, 256] {
            let wc = worst_case_rate_vector(n);
            assert!(
                (wc.queue_rate() - 1.0 / n as f64).abs() < 1e-12,
                "n = {n}: queue rate {}",
                wc.queue_rate()
            );
        }
    }

    #[test]
    fn reducing_any_rate_drops_below_the_service_rate() {
        // The worst case is tight: shaving a little off any contributing VOQ
        // pushes the queue's arrival rate strictly below 1/N.
        let n = 16;
        let wc = worst_case_rate_vector(n);
        for k in 0..n {
            if wc.rates[k] == 0.0 {
                continue;
            }
            let mut rates = wc.rates.clone();
            rates[k] *= 0.9;
            assert!(queue_arrival_rate(&rates, n) < 1.0 / n as f64);
        }
    }

    #[test]
    fn uniform_load_never_overloads_the_queue() {
        // Uniform traffic at full load: every VOQ rate 1/N, stripe size N,
        // load-per-share 1/N².  The tagged queue receives exactly 1/N... from
        // all N VOQs?  No: only the VOQs whose interval covers the tagged
        // port, which with stripe size N is all of them → N · 1/N² = 1/N, not
        // *less* than 1/N, but not more either.  At 99% load it is strictly
        // below.
        let n = 64;
        let rates = vec![0.99 / n as f64; n];
        assert!(queue_arrival_rate(&rates, n) < 1.0 / n as f64);
    }

    proptest! {
        /// Theorem 1 verified numerically: any admissible split with total
        /// load below the threshold keeps the queue's arrival rate below 1/N,
        /// for every placement (the placement is captured by how the rates are
        /// ordered by distance, so shuffling the vector covers placements).
        #[test]
        fn below_threshold_never_overloads(
            raw in proptest::collection::vec(0.0f64..1.0, 16),
            seed in 0u64..1000,
        ) {
            let n = 16usize;
            let threshold = zero_overload_threshold(n);
            let sum: f64 = raw.iter().sum();
            prop_assume!(sum > 0.0);
            // Scale to a total load just below the threshold.
            let scale = (threshold * 0.999) / sum;
            let mut rates: Vec<f64> = raw.iter().map(|r| r * scale).collect();
            // Apply a pseudo-random rotation/shuffle to model the permutation.
            let rot = (seed as usize) % n;
            rates.rotate_left(rot);
            let x = queue_arrival_rate(&rates, n);
            prop_assert!(x < 1.0 / n as f64 + 1e-12,
                "queue rate {x} exceeds 1/N under total load {}", threshold * 0.999);
        }

        /// The tagged queue's arrival rate never exceeds the total load
        /// divided by ... in fact never exceeds the total load, and is always
        /// nonnegative.
        #[test]
        fn queue_rate_is_sane(raw in proptest::collection::vec(0.0f64..0.1, 16)) {
            let n = 16usize;
            let x = queue_arrival_rate(&raw, n);
            let total: f64 = raw.iter().sum();
            prop_assert!(x >= 0.0);
            prop_assert!(x <= total + 1e-12);
        }
    }
}
