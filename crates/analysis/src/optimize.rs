//! Small numerical routines used by the analytical models.

/// Minimize a unimodal function `f` over the closed interval `[lo, hi]` using
/// golden-section search.  Returns `(argmin, min)`.
///
/// The Chernoff exponent of Theorem 2 is convex in θ, so golden-section search
/// converges to the global minimum.
pub fn golden_section_min<F: Fn(f64) -> f64>(f: F, lo: f64, hi: f64, tol: f64) -> (f64, f64) {
    assert!(
        lo.is_finite() && hi.is_finite() && lo < hi,
        "invalid interval [{lo}, {hi}]"
    );
    assert!(tol > 0.0);
    let inv_phi = (5f64.sqrt() - 1.0) / 2.0; // 1/φ ≈ 0.618
    let mut a = lo;
    let mut b = hi;
    let mut c = b - (b - a) * inv_phi;
    let mut d = a + (b - a) * inv_phi;
    let mut fc = f(c);
    let mut fd = f(d);
    while (b - a).abs() > tol {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - (b - a) * inv_phi;
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + (b - a) * inv_phi;
            fd = f(d);
        }
    }
    let x = (a + b) / 2.0;
    (x, f(x))
}

/// Expand the search interval geometrically until the minimum of a convex
/// function is bracketed, then run golden-section search.  Used when no a
/// priori upper bound on the optimal θ is known.
pub fn minimize_convex<F: Fn(f64) -> f64>(f: F, initial_hi: f64, tol: f64) -> (f64, f64) {
    let mut hi = initial_hi.max(tol * 10.0);
    // Grow the interval until the value at the right edge exceeds the value
    // somewhere inside, guaranteeing the minimum is interior (or until the
    // interval is absurdly large, in which case the function is decreasing and
    // the right edge is as good as it gets).
    let mut guard = 0;
    while f(hi) < f(hi / 2.0) && guard < 200 {
        hi *= 2.0;
        guard += 1;
    }
    golden_section_min(f, 0.0, hi, tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_minimum_of_a_parabola() {
        let (x, v) = golden_section_min(|x| (x - 3.0) * (x - 3.0) + 2.0, 0.0, 10.0, 1e-9);
        assert!((x - 3.0).abs() < 1e-6);
        assert!((v - 2.0).abs() < 1e-10);
    }

    #[test]
    fn handles_minimum_at_interval_edge() {
        let (x, _) = golden_section_min(|x| x, 1.0, 2.0, 1e-9);
        assert!((x - 1.0).abs() < 1e-6);
    }

    #[test]
    fn minimize_convex_expands_the_bracket() {
        // Minimum at x = 1000, well outside the initial interval.
        let (x, v) = minimize_convex(|x| (x - 1000.0).powi(2), 1.0, 1e-6);
        assert!((x - 1000.0).abs() < 1e-2);
        assert!(v < 1e-3);
    }

    #[test]
    #[should_panic]
    fn rejects_inverted_interval() {
        let _ = golden_section_min(|x| x, 2.0, 1.0, 1e-9);
    }
}
